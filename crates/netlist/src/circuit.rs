use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::NetlistError;
use crate::gate::Node;
use crate::id::NodeId;

/// A combinational, single-driver, gate-level netlist.
///
/// Nodes are primary inputs or gates; each node drives exactly one net that
/// shares its [`NodeId`], so the paper's "output of gate *i*" is simply
/// node *i*. Construction goes through [`CircuitBuilder`], which validates
/// acyclicity, arity and name uniqueness; once built, a circuit is
/// immutable and carries precomputed fan-outs and a topological order.
///
/// [`CircuitBuilder`]: crate::CircuitBuilder
///
/// # Example
///
/// ```
/// use ser_netlist::{CircuitBuilder, GateKind};
///
/// let mut b = CircuitBuilder::new("half_adder");
/// let a = b.input("a");
/// let c = b.input("b");
/// let sum = b.gate(GateKind::Xor, "sum", &[a, c]).unwrap();
/// let carry = b.gate(GateKind::And, "carry", &[a, c]).unwrap();
/// b.mark_output(sum);
/// b.mark_output(carry);
/// let circuit = b.finish().unwrap();
///
/// assert_eq!(circuit.gate_count(), 2);
/// assert_eq!(circuit.fanout(a), &[sum, carry]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    name: String,
    nodes: Vec<Node>,
    primary_inputs: Vec<NodeId>,
    primary_outputs: Vec<NodeId>,
    fanouts: Vec<Vec<NodeId>>,
    topo: Vec<NodeId>,
}

impl Circuit {
    /// Assembles a circuit from parts, validating every structural
    /// invariant. Prefer [`CircuitBuilder`](crate::CircuitBuilder); this
    /// constructor is the common funnel it uses.
    ///
    /// # Errors
    ///
    /// Returns a [`NetlistError`] if any node has out-of-range fan-in ids,
    /// an arity its kind forbids, a duplicate name, if the graph has a
    /// cycle, if no primary output is marked, or if an output id is out of
    /// range or duplicated.
    pub fn from_parts(
        name: impl Into<String>,
        nodes: Vec<Node>,
        primary_outputs: Vec<NodeId>,
    ) -> Result<Self, NetlistError> {
        let name = name.into();
        let n = nodes.len();

        let mut seen_names: HashMap<&str, usize> = HashMap::with_capacity(n);
        for (i, node) in nodes.iter().enumerate() {
            if let Some(prev) = seen_names.insert(node.name.as_str(), i) {
                return Err(NetlistError::DuplicateName {
                    name: node.name.clone(),
                    first: NodeId::new(prev),
                    second: NodeId::new(i),
                });
            }
            if !node.kind.arity_ok(node.fanin.len()) {
                return Err(NetlistError::BadArity {
                    node: NodeId::new(i),
                    kind: node.kind,
                    fanin: node.fanin.len(),
                });
            }
            for &f in &node.fanin {
                if f.index() >= n {
                    return Err(NetlistError::DanglingFanin {
                        node: NodeId::new(i),
                        missing: f,
                    });
                }
            }
        }

        if primary_outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }
        let mut seen_po = vec![false; n];
        for &po in &primary_outputs {
            if po.index() >= n {
                return Err(NetlistError::DanglingOutput { missing: po });
            }
            if seen_po[po.index()] {
                return Err(NetlistError::DuplicateOutput { output: po });
            }
            seen_po[po.index()] = true;
        }

        let mut fanouts: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (i, node) in nodes.iter().enumerate() {
            for &f in &node.fanin {
                fanouts[f.index()].push(NodeId::new(i));
            }
        }

        let topo = kahn_topological_order(&nodes, &fanouts)?;

        let primary_inputs = nodes
            .iter()
            .enumerate()
            .filter(|(_, node)| node.is_input())
            .map(|(i, _)| NodeId::new(i))
            .collect();

        Ok(Circuit {
            name,
            nodes,
            primary_inputs,
            primary_outputs,
            fanouts,
            topo,
        })
    }

    /// Circuit name (e.g. `"c432"`).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of nodes (primary inputs + gates).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of gate nodes (excludes primary inputs).
    #[inline]
    pub fn gate_count(&self) -> usize {
        self.nodes.len() - self.primary_inputs.len()
    }

    /// Number of fan-in edges in the circuit graph.
    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(|g| g.fanin.len()).sum()
    }

    /// The node behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this circuit.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All nodes, indexable by [`NodeId::index`].
    #[inline]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Ids of all nodes, in storage order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::new)
    }

    /// Ids of the gate nodes (excluding primary inputs), in storage order.
    pub fn gates(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, node)| !node.is_input())
            .map(|(i, _)| NodeId::new(i))
    }

    /// Primary inputs, in declaration order.
    #[inline]
    pub fn primary_inputs(&self) -> &[NodeId] {
        &self.primary_inputs
    }

    /// Primary outputs, in declaration order. A node may be both a gate
    /// feeding further logic and a primary output.
    #[inline]
    pub fn primary_outputs(&self) -> &[NodeId] {
        &self.primary_outputs
    }

    /// Returns `true` if `id` is marked as a primary output.
    pub fn is_primary_output(&self, id: NodeId) -> bool {
        self.primary_outputs.contains(&id)
    }

    /// Nodes driven by `id`'s output net, in fan-in declaration order. A
    /// node appears once per pin it feeds.
    #[inline]
    pub fn fanout(&self, id: NodeId) -> &[NodeId] {
        &self.fanouts[id.index()]
    }

    /// A topological order over all nodes (every node appears after its
    /// fan-ins). Stable for a given circuit.
    #[inline]
    pub fn topological_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Looks a node up by net name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|g| g.name == name)
            .map(NodeId::new)
    }
}

/// Kahn's algorithm; detects cycles.
fn kahn_topological_order(
    nodes: &[Node],
    fanouts: &[Vec<NodeId>],
) -> Result<Vec<NodeId>, NetlistError> {
    let n = nodes.len();
    let mut indegree: Vec<usize> = nodes.iter().map(|g| g.fanin.len()).collect();
    let mut queue: Vec<NodeId> = (0..n)
        .filter(|&i| indegree[i] == 0)
        .map(NodeId::new)
        .collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        order.push(u);
        for &v in &fanouts[u.index()] {
            indegree[v.index()] -= 1;
            if indegree[v.index()] == 0 {
                queue.push(v);
            }
        }
    }
    if order.len() != n {
        let stuck = (0..n)
            .find(|&i| indegree[i] > 0)
            .map(NodeId::new)
            .expect("cycle implies a node with residual indegree");
        return Err(NetlistError::Cycle { witness: stuck });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::gate::GateKind;

    fn tiny() -> Circuit {
        let mut b = CircuitBuilder::new("tiny");
        let a = b.input("a");
        let bb = b.input("b");
        let g = b.gate(GateKind::And, "g", &[a, bb]).unwrap();
        let h = b.gate(GateKind::Not, "h", &[g]).unwrap();
        b.mark_output(h);
        b.finish().unwrap()
    }

    #[test]
    fn counts() {
        let c = tiny();
        assert_eq!(c.node_count(), 4);
        assert_eq!(c.gate_count(), 2);
        assert_eq!(c.edge_count(), 3);
        assert_eq!(c.primary_inputs().len(), 2);
        assert_eq!(c.primary_outputs().len(), 1);
    }

    #[test]
    fn fanout_tracks_fanin() {
        let c = tiny();
        let a = c.find("a").unwrap();
        let g = c.find("g").unwrap();
        let h = c.find("h").unwrap();
        assert_eq!(c.fanout(a), &[g]);
        assert_eq!(c.fanout(g), &[h]);
        assert!(c.fanout(h).is_empty());
    }

    #[test]
    fn topological_order_respects_edges() {
        let c = tiny();
        let pos: Vec<usize> = {
            let mut p = vec![0; c.node_count()];
            for (rank, id) in c.topological_order().iter().enumerate() {
                p[id.index()] = rank;
            }
            p
        };
        for id in c.node_ids() {
            for &f in &c.node(id).fanin {
                assert!(pos[f.index()] < pos[id.index()]);
            }
        }
    }

    #[test]
    fn cycle_is_rejected() {
        // Hand-roll nodes with a 2-cycle g <-> h.
        let nodes = vec![
            Node {
                kind: GateKind::Input,
                fanin: vec![],
                name: "a".into(),
            },
            Node {
                kind: GateKind::And,
                fanin: vec![NodeId::new(0), NodeId::new(2)],
                name: "g".into(),
            },
            Node {
                kind: GateKind::Not,
                fanin: vec![NodeId::new(1)],
                name: "h".into(),
            },
        ];
        let err = Circuit::from_parts("cyclic", nodes, vec![NodeId::new(2)]).unwrap_err();
        assert!(matches!(err, NetlistError::Cycle { .. }), "{err}");
    }

    #[test]
    fn duplicate_names_rejected() {
        let nodes = vec![
            Node {
                kind: GateKind::Input,
                fanin: vec![],
                name: "x".into(),
            },
            Node {
                kind: GateKind::Not,
                fanin: vec![NodeId::new(0)],
                name: "x".into(),
            },
        ];
        let err = Circuit::from_parts("dup", nodes, vec![NodeId::new(1)]).unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateName { .. }), "{err}");
    }

    #[test]
    fn missing_outputs_rejected() {
        let nodes = vec![Node {
            kind: GateKind::Input,
            fanin: vec![],
            name: "a".into(),
        }];
        let err = Circuit::from_parts("noout", nodes, vec![]).unwrap_err();
        assert!(matches!(err, NetlistError::NoOutputs), "{err}");
    }

    #[test]
    fn bad_arity_rejected() {
        let nodes = vec![
            Node {
                kind: GateKind::Input,
                fanin: vec![],
                name: "a".into(),
            },
            Node {
                kind: GateKind::Not,
                fanin: vec![NodeId::new(0), NodeId::new(0)],
                name: "inv".into(),
            },
        ];
        let err = Circuit::from_parts("arity", nodes, vec![NodeId::new(1)]).unwrap_err();
        assert!(matches!(err, NetlistError::BadArity { .. }), "{err}");
    }

    #[test]
    fn po_can_feed_logic() {
        let mut b = CircuitBuilder::new("po_fan");
        let a = b.input("a");
        let g = b.gate(GateKind::Not, "g", &[a]).unwrap();
        let h = b.gate(GateKind::Not, "h", &[g]).unwrap();
        b.mark_output(g);
        b.mark_output(h);
        let c = b.finish().unwrap();
        assert!(c.is_primary_output(g));
        assert_eq!(c.fanout(g), &[h]);
    }
}
