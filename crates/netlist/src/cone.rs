//! Fan-in and fan-out cones and reconvergence detection.
//!
//! The per-call queries here share a single forward scan
//! ([`ConeScan`]); batch workloads that need *every* node's cone should
//! use [`crate::csr::ConeArena`], which materializes them all at once
//! into one arena.

use crate::circuit::Circuit;
use crate::id::NodeId;

/// The product of one forward cone scan from a root: the membership mask
/// and the topologically ordered cone, computed together so callers
/// needing several views pay for a single pass.
#[derive(Debug, Clone)]
pub struct ConeScan {
    mask: Vec<bool>,
    cone: Vec<NodeId>,
}

/// The single marking pass shared by every cone query: forward over the
/// topological order, invoking `on_member` for each cone node in order.
fn mark_cone(circuit: &Circuit, root: NodeId, mut on_member: impl FnMut(NodeId)) -> Vec<bool> {
    let mut mask = vec![false; circuit.node_count()];
    mask[root.index()] = true;
    for &id in circuit.topological_order() {
        if mask[id.index()] {
            on_member(id);
            for &s in circuit.fanout(id) {
                mask[s.index()] = true;
            }
        }
    }
    mask
}

impl ConeScan {
    /// Runs the scan: one forward pass over the topological order.
    pub fn of(circuit: &Circuit, root: NodeId) -> Self {
        let mut cone = Vec::new();
        let mask = mark_cone(circuit, root, |id| cone.push(id));
        ConeScan { mask, cone }
    }

    /// The inclusive fan-out cone, topologically ordered.
    #[inline]
    pub fn cone(&self) -> &[NodeId] {
        &self.cone
    }

    /// Membership mask over all nodes.
    #[inline]
    pub fn mask(&self) -> &[bool] {
        &self.mask
    }

    /// Consumes the scan, returning the cone vector.
    #[inline]
    pub fn into_cone(self) -> Vec<NodeId> {
        self.cone
    }

    /// Consumes the scan, returning the membership mask.
    #[inline]
    pub fn into_mask(self) -> Vec<bool> {
        self.mask
    }

    /// Primary outputs inside the cone, in PO declaration order.
    pub fn reachable_outputs(&self, circuit: &Circuit) -> Vec<NodeId> {
        circuit
            .primary_outputs()
            .iter()
            .copied()
            .filter(|po| self.mask[po.index()])
            .collect()
    }
}

/// The transitive fan-out cone of `root` (inclusive), returned in
/// topological order. This is the set of nodes whose value can change when
/// `root` glitches — the only region a strike simulation needs to touch.
///
/// # Example
///
/// ```
/// use ser_netlist::{generate, cone};
///
/// let c17 = generate::c17();
/// let g10 = c17.find("10").unwrap();
/// let cone = cone::fanout_cone(&c17, g10);
/// assert!(cone.contains(&g10));
/// ```
pub fn fanout_cone(circuit: &Circuit, root: NodeId) -> Vec<NodeId> {
    ConeScan::of(circuit, root).into_cone()
}

/// The transitive fan-in cone of `root` (inclusive), in topological order.
pub fn fanin_cone(circuit: &Circuit, root: NodeId) -> Vec<NodeId> {
    let mut in_cone = vec![false; circuit.node_count()];
    in_cone[root.index()] = true;
    // Walk reverse-topologically to mark, then collect forward for order.
    for &id in circuit.topological_order().iter().rev() {
        if in_cone[id.index()] {
            for &f in &circuit.node(id).fanin {
                in_cone[f.index()] = true;
            }
        }
    }
    circuit
        .topological_order()
        .iter()
        .copied()
        .filter(|id| in_cone[id.index()])
        .collect()
}

/// Marks, for every node, whether `root` lies in its fan-in cone
/// (i.e. whether the node is in `root`'s fan-out cone). Cheaper than
/// materializing the cone when only membership tests are needed.
pub fn fanout_cone_mask(circuit: &Circuit, root: NodeId) -> Vec<bool> {
    mark_cone(circuit, root, |_| ())
}

/// Primary outputs reachable from `root`, in PO declaration order.
pub fn reachable_outputs(circuit: &Circuit, root: NodeId) -> Vec<NodeId> {
    let mask = mark_cone(circuit, root, |_| ());
    circuit
        .primary_outputs()
        .iter()
        .copied()
        .filter(|po| mask[po.index()])
        .collect()
}

/// Returns `true` if `root` has *reconvergent fan-out*: two vertex-disjoint
/// paths from `root` that meet again. Reconvergence is what makes exact
/// sensitization-probability computation NP-complete (the paper's ref.
/// \[9\]) and why ASERTA falls back to random simulation.
///
/// Detection: a node in the fan-out cone reconverges if at least two of
/// its fan-ins are themselves in the cone, or are reached through distinct
/// immediate successors of `root`.
pub fn has_reconvergent_fanout(circuit: &Circuit, root: NodeId) -> bool {
    // Tag every cone node with the first immediate successor ("branch")
    // through which it was reached; a node reached via two different
    // branches, or with two cone fan-ins, witnesses reconvergence.
    const UNTAGGED: usize = usize::MAX;
    let mut tag = vec![UNTAGGED; circuit.node_count()];
    let branches = circuit.fanout(root);
    if branches.len() < 2 {
        return false;
    }
    for (b, &s) in branches.iter().enumerate() {
        if tag[s.index()] != UNTAGGED && tag[s.index()] != b {
            return true; // root feeds the same gate on two pins… still reconvergent at that gate
        }
        tag[s.index()] = b;
    }
    for &id in circuit.topological_order() {
        if id == root || tag[id.index()] == UNTAGGED {
            continue;
        }
        for &s in circuit.fanout(id) {
            if s == root {
                continue;
            }
            let t = tag[s.index()];
            if t == UNTAGGED {
                tag[s.index()] = tag[id.index()];
            } else if t != tag[id.index()] {
                return true;
            }
        }
    }
    false
}

/// Counts the nodes with reconvergent fan-out in the whole circuit.
pub fn reconvergent_node_count(circuit: &Circuit) -> usize {
    circuit
        .node_ids()
        .filter(|&id| has_reconvergent_fanout(circuit, id))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::gate::GateKind;
    use crate::generate;

    #[test]
    fn cone_of_po_is_itself() {
        let c = generate::c17();
        let po = c.primary_outputs()[0];
        assert_eq!(fanout_cone(&c, po), vec![po]);
    }

    #[test]
    fn cone_of_pi_reaches_some_po() {
        let c = generate::c17();
        for &pi in c.primary_inputs() {
            let outs = reachable_outputs(&c, pi);
            assert!(!outs.is_empty(), "{pi} reaches no PO");
        }
    }

    #[test]
    fn fanin_cone_of_po_contains_inputs() {
        let c = generate::c17();
        let po = c.primary_outputs()[0];
        let cone = fanin_cone(&c, po);
        assert!(cone.iter().any(|&id| c.node(id).is_input()));
        assert_eq!(*cone.last().unwrap(), po);
    }

    #[test]
    fn mask_agrees_with_cone() {
        let c = generate::c17();
        for id in c.node_ids() {
            let mask = fanout_cone_mask(&c, id);
            let cone = fanout_cone(&c, id);
            for m in c.node_ids() {
                assert_eq!(mask[m.index()], cone.contains(&m));
            }
        }
    }

    #[test]
    fn reconvergence_detected() {
        // root branches to two gates that reconverge at y.
        let mut b = CircuitBuilder::new("reconv");
        let a = b.input("a");
        let r = b.gate(GateKind::Buf, "r", &[a]).unwrap();
        let p = b.gate(GateKind::Not, "p", &[r]).unwrap();
        let q = b.gate(GateKind::Buf, "q", &[r]).unwrap();
        let y = b.gate(GateKind::And, "y", &[p, q]).unwrap();
        b.mark_output(y);
        let c = b.finish().unwrap();
        assert!(has_reconvergent_fanout(&c, r));
        assert!(!has_reconvergent_fanout(&c, p));
    }

    #[test]
    fn chain_has_no_reconvergence() {
        let mut b = CircuitBuilder::new("chain");
        let a = b.input("a");
        let g1 = b.gate(GateKind::Not, "g1", &[a]).unwrap();
        let g2 = b.gate(GateKind::Not, "g2", &[g1]).unwrap();
        b.mark_output(g2);
        let c = b.finish().unwrap();
        for id in c.node_ids() {
            assert!(!has_reconvergent_fanout(&c, id));
        }
    }

    #[test]
    fn c17_has_reconvergent_nodes() {
        // Net 11 (NAND of 3,6) famously fans out to gates 16 and 19 whose
        // cones reconverge at c17's outputs only via distinct POs — but net
        // 3 reconverges inside: 3 feeds 10 and 11, meeting at 22 via 10/16.
        let c = generate::c17();
        let n3 = c.find("3").unwrap();
        assert!(has_reconvergent_fanout(&c, n3));
        assert!(reconvergent_node_count(&c) >= 1);
    }
}
