//! A cfg-gated fail-point registry for fault-injection testing, modeled
//! on the `fail` crate.
//!
//! A *fail point* is a named hook compiled into library code behind the
//! `fail-points` cargo feature. In production builds the hook vanishes
//! entirely; in fault-injection builds a test arms a fail point with a
//! [`FailAction`] and the next execution of the hook either surfaces a
//! typed error (through the `failpoint!` macro's error arm) or panics on
//! purpose (to exercise panic containment at thread-scope boundaries).
//!
//! Consuming crates declare their own `fail-points` feature forwarding to
//! `ser_netlist/fail-points`, then thread hooks through fallible code:
//!
//! ```ignore
//! ser_netlist::failpoint!("aserta::session_recompute", {
//!     return Err(self.poison_now(PoisonReason::Injected("aserta::session_recompute")));
//! });
//! ```
//!
//! Tests serialize access to the process-global registry with
//! [`scenario`], which clears all fail points on entry and on drop:
//!
//! ```ignore
//! let _guard = ser_netlist::failpoint::scenario();
//! ser_netlist::failpoint::set_times("aserta::session_recompute", FailAction::Error, 1);
//! assert!(session.try_apply(&deltas).is_err());
//! assert_eq!(ser_netlist::failpoint::hits("aserta::session_recompute"), 1);
//! ```

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// What an armed fail point does when execution reaches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Take the `failpoint!` macro's error arm (surface a typed error).
    Error,
    /// Panic at the fail point (exercises panic containment).
    Panic,
}

#[derive(Debug, Clone, Copy)]
struct Armed {
    action: FailAction,
    /// Remaining firings; `None` = unlimited.
    remaining: Option<usize>,
    /// Executions to let pass before the first firing.
    skip: usize,
}

#[derive(Debug, Default)]
struct Registry {
    armed: HashMap<String, Armed>,
    /// Times each fail point actually fired (returned `Some` from
    /// [`check`]).
    hits: HashMap<String, usize>,
}

fn registry() -> MutexGuard<'static, Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    match REGISTRY.get_or_init(Mutex::default).lock() {
        Ok(g) => g,
        // A panicking fail point poisons the mutex by design; the state
        // is a plain map, always valid.
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Arms `name` to fire on every execution until [`clear`]ed.
pub fn set(name: &str, action: FailAction) {
    registry().armed.insert(
        name.to_owned(),
        Armed {
            action,
            remaining: None,
            skip: 0,
        },
    );
}

/// Arms `name` to fire on the next `times` executions, then disarm
/// itself. `set_times(name, action, 1)` is the one-shot used to test
/// recovery after a transient fault.
pub fn set_times(name: &str, action: FailAction, times: usize) {
    registry().armed.insert(
        name.to_owned(),
        Armed {
            action,
            remaining: Some(times),
            skip: 0,
        },
    );
}

/// Arms `name` to let the next `skip` executions pass untouched, then
/// fire on the `times` following ones and disarm itself. This targets
/// the *k-th* traversal of a hook — e.g. the deadline checkpoint of one
/// specific pipeline stage — without disturbing the earlier ones.
pub fn set_after(name: &str, action: FailAction, skip: usize, times: usize) {
    registry().armed.insert(
        name.to_owned(),
        Armed {
            action,
            remaining: Some(times),
            skip,
        },
    );
}

/// Disarms `name` (keeps its hit counter).
pub fn clear(name: &str) {
    registry().armed.remove(name);
}

/// Disarms every fail point and zeroes all hit counters.
pub fn clear_all() {
    let mut reg = registry();
    reg.armed.clear();
    reg.hits.clear();
}

/// Times `name` has fired since the last [`clear_all`].
pub fn hits(name: &str) -> usize {
    registry().hits.get(name).copied().unwrap_or(0)
}

/// Evaluates the fail point `name`: returns the armed action (consuming
/// one firing of a counted arm) or `None` when disarmed. Library code
/// calls this through the `failpoint!` macro, never directly.
pub fn check(name: &str) -> Option<FailAction> {
    let mut reg = registry();
    let armed = reg.armed.get_mut(name)?;
    if armed.skip > 0 {
        armed.skip -= 1;
        return None;
    }
    let action = armed.action;
    match &mut armed.remaining {
        Some(0) => return None,
        Some(n) => {
            *n -= 1;
            if *n == 0 {
                reg.armed.remove(name);
            }
        }
        None => {}
    }
    *reg.hits.entry(name.to_owned()).or_insert(0) += 1;
    Some(action)
}

/// RAII guard serializing fault-injection scenarios.
///
/// The fail-point registry is process-global, so concurrently running
/// tests would trip over each other's armed points. [`scenario`] takes a
/// global lock and clears all state on entry and on drop; hold the guard
/// for the whole test.
pub struct Scenario {
    _lock: MutexGuard<'static, ()>,
}

/// Starts an isolated fault-injection scenario (see [`Scenario`]).
pub fn scenario() -> Scenario {
    static SCENARIO: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = match SCENARIO.get_or_init(Mutex::default).lock() {
        Ok(g) => g,
        // A previous scenario panicked mid-test (possibly on purpose, via
        // `FailAction::Panic`); the registry is still structurally sound.
        Err(poisoned) => poisoned.into_inner(),
    };
    clear_all();
    Scenario { _lock: lock }
}

impl Drop for Scenario {
    fn drop(&mut self) {
        clear_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counted_arm_fires_then_disarms() {
        let _guard = scenario();
        set_times("netlist::test_point", FailAction::Error, 2);
        assert_eq!(check("netlist::test_point"), Some(FailAction::Error));
        assert_eq!(check("netlist::test_point"), Some(FailAction::Error));
        assert_eq!(check("netlist::test_point"), None);
        assert_eq!(hits("netlist::test_point"), 2);
    }

    #[test]
    fn unlimited_arm_fires_until_cleared() {
        let _guard = scenario();
        set("netlist::test_unlimited", FailAction::Panic);
        for _ in 0..5 {
            assert_eq!(check("netlist::test_unlimited"), Some(FailAction::Panic));
        }
        clear("netlist::test_unlimited");
        assert_eq!(check("netlist::test_unlimited"), None);
        assert_eq!(hits("netlist::test_unlimited"), 5);
    }

    #[test]
    fn skipped_arm_passes_then_fires() {
        let _guard = scenario();
        set_after("netlist::test_skip", FailAction::Error, 2, 1);
        assert_eq!(check("netlist::test_skip"), None);
        assert_eq!(check("netlist::test_skip"), None);
        assert_eq!(hits("netlist::test_skip"), 0, "skipped passes don't count");
        assert_eq!(check("netlist::test_skip"), Some(FailAction::Error));
        assert_eq!(check("netlist::test_skip"), None, "one-shot disarms");
        assert_eq!(hits("netlist::test_skip"), 1);
    }

    #[test]
    fn scenario_clears_state() {
        {
            let _guard = scenario();
            set("netlist::test_leak", FailAction::Error);
        }
        let _guard = scenario();
        assert_eq!(check("netlist::test_leak"), None);
        assert_eq!(hits("netlist::test_leak"), 0);
    }

    #[test]
    fn macro_error_arm_returns() {
        let _guard = scenario();
        fn hook() -> Result<u32, &'static str> {
            crate::failpoint!("netlist::test_macro", return Err("injected"));
            Ok(7)
        }
        assert_eq!(hook(), Ok(7));
        set_times("netlist::test_macro", FailAction::Error, 1);
        assert_eq!(hook(), Err("injected"));
        assert_eq!(hook(), Ok(7), "one-shot arm must disarm itself");
    }
}
