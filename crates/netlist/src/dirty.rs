//! Sparse dirty-set machinery for incremental re-analysis.
//!
//! The SERTOPT inner loop mutates a handful of gates per move; everything
//! the incremental engine recomputes is scoped by *closures* of those
//! seeds over the circuit graph: a delay change at gate `g` invalidates
//! timing downstream (the fan-out closure) and expected-width tables
//! upstream (the fan-in closure). [`SparseSet`] is the workhorse: a
//! stamped membership set with `O(1)` insert/contains and `O(|members|)`
//! iteration/clearing, so per-move bookkeeping never pays an `O(V)`
//! reset.

use crate::csr::CsrView;

/// A sparse set over node indices `0..n` with constant-time insert and
/// membership tests and clear cost proportional to the member count.
///
/// Internally a stamp array: `stamp[i] == cur` means `i` is a member, so
/// [`SparseSet::clear`] just bumps the stamp (with a full reset on the
/// rare wrap-around).
///
/// # Example
///
/// ```
/// use ser_netlist::dirty::SparseSet;
///
/// let mut s = SparseSet::new(8);
/// assert!(s.insert(3));
/// assert!(!s.insert(3), "second insert is a no-op");
/// assert!(s.contains(3) && !s.contains(4));
/// s.clear();
/// assert!(s.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct SparseSet {
    stamp: Vec<u32>,
    cur: u32,
    members: Vec<u32>,
}

impl SparseSet {
    /// An empty set over the universe `0..n`.
    pub fn new(n: usize) -> Self {
        SparseSet {
            stamp: vec![0; n],
            cur: 1,
            members: Vec::new(),
        }
    }

    /// Removes every member. `O(1)` amortized.
    pub fn clear(&mut self) {
        self.members.clear();
        if self.cur == u32::MAX {
            self.stamp.fill(0);
            self.cur = 1;
        } else {
            self.cur += 1;
        }
    }

    /// Inserts `i`; returns whether it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the universe.
    #[inline]
    pub fn insert(&mut self, i: u32) -> bool {
        if self.stamp[i as usize] == self.cur {
            return false;
        }
        self.stamp[i as usize] = self.cur;
        self.members.push(i);
        true
    }

    /// Whether `i` is a member.
    #[inline]
    pub fn contains(&self, i: u32) -> bool {
        self.stamp[i as usize] == self.cur
    }

    /// The members, in insertion order.
    #[inline]
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Expands `set` in place to its forward (fan-out) closure: every node
/// reachable from a current member through fan-out edges joins the set.
/// Members themselves stay in. `O(Σ out-degree of the closure)`.
pub fn close_over_fanout(csr: &CsrView, set: &mut SparseSet) {
    let mut head = 0;
    while head < set.members().len() {
        let u = set.members()[head];
        head += 1;
        for idx in 0..csr.fanout_of(u as usize).len() {
            let v = csr.fanout_of(u as usize)[idx];
            set.insert(v);
        }
    }
}

/// Expands `set` in place to its backward (fan-in) closure: every node
/// that reaches a current member through fan-in edges joins the set.
pub fn close_over_fanin(csr: &CsrView, set: &mut SparseSet) {
    let mut head = 0;
    while head < set.members().len() {
        let u = set.members()[head];
        head += 1;
        for idx in 0..csr.fanin_of(u as usize).len() {
            let v = csr.fanin_of(u as usize)[idx];
            set.insert(v);
        }
    }
}

/// Fills `set` with the *strict ancestors* of `seeds`: every node with a
/// path to a seed, excluding the seeds themselves (unless a seed is an
/// ancestor of another seed). This is exactly the set of expected-width
/// rows invalidated by a delay change at the seeds.
pub fn strict_ancestors(csr: &CsrView, seeds: &[u32], set: &mut SparseSet) {
    set.clear();
    for &s in seeds {
        for idx in 0..csr.fanin_of(s as usize).len() {
            let v = csr.fanin_of(s as usize)[idx];
            set.insert(v);
        }
    }
    close_over_fanin(csr, set);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn clear_is_cheap_and_complete() {
        let mut s = SparseSet::new(4);
        s.insert(0);
        s.insert(2);
        assert_eq!(s.len(), 2);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(0) && !s.contains(2));
        assert!(s.insert(2));
        assert_eq!(s.members(), &[2]);
    }

    #[test]
    fn fanout_closure_is_the_cone() {
        let c = generate::c17();
        let csr = CsrView::build(&c);
        let arena = crate::csr::ConeArena::build(&csr);
        let mut set = SparseSet::new(c.node_count());
        for id in c.node_ids() {
            set.clear();
            set.insert(id.index() as u32);
            close_over_fanout(&csr, &mut set);
            let mut got: Vec<u32> = set.members().to_vec();
            got.sort_unstable();
            let mut want: Vec<u32> = arena.cone(id.index()).to_vec();
            want.sort_unstable();
            assert_eq!(got, want, "cone of {id}");
        }
    }

    #[test]
    fn fanin_closure_matches_reverse_reachability() {
        let c = generate::sec32("t");
        let csr = CsrView::build(&c);
        let arena = crate::csr::ConeArena::build(&csr);
        let mut set = SparseSet::new(c.node_count());
        for id in c.node_ids() {
            set.clear();
            set.insert(id.index() as u32);
            close_over_fanin(&csr, &mut set);
            // v is in the fan-in closure of id iff id is in v's fan-out
            // cone.
            for v in 0..c.node_count() as u32 {
                let in_cone = arena.cone(v as usize).contains(&(id.index() as u32));
                assert_eq!(set.contains(v), in_cone, "node {v} vs root {id}");
            }
        }
    }

    #[test]
    fn strict_ancestors_exclude_isolated_seed() {
        let c = generate::c17();
        let csr = CsrView::build(&c);
        let mut set = SparseSet::new(c.node_count());
        // A primary output driver's strict ancestors never include itself.
        let po = c.primary_outputs()[0];
        strict_ancestors(&csr, &[po.index() as u32], &mut set);
        assert!(!set.contains(po.index() as u32));
        assert!(!set.is_empty(), "c17 POs have ancestors");
    }
}
