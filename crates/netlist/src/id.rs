use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a node (primary input or gate) in a [`Circuit`].
///
/// A `NodeId` doubles as the identifier of the *net* the node drives: the
/// netlist is single-driver, so "output net of gate `i`" and "node `i`" are
/// interchangeable, matching the paper's indexing of gates and circuit
/// nodes.
///
/// `NodeId`s are dense indices (`0..circuit.node_count()`) and are only
/// meaningful relative to the circuit that issued them.
///
/// [`Circuit`]: crate::Circuit
///
/// # Example
///
/// ```
/// use ser_netlist::NodeId;
///
/// let id = NodeId::new(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(id.to_string(), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a `NodeId` from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the dense index backing this id.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for i in [0usize, 1, 17, 65_535] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(NodeId::new(42).to_string(), "n42");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn rejects_oversized_index() {
        let _ = NodeId::new(u32::MAX as usize + 1);
    }
}
