use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::id::NodeId;

/// The logic function of a node in a [`Circuit`].
///
/// `Input` marks a primary input (no fan-in); every other variant is a
/// combinational gate. The set matches the ISCAS'85 `.bench` vocabulary
/// used by the paper's evaluation.
///
/// [`Circuit`]: crate::Circuit
///
/// # Example
///
/// ```
/// use ser_netlist::GateKind;
///
/// assert_eq!(GateKind::Nand.controlling_value(), Some(false));
/// assert!(GateKind::Xor.controlling_value().is_none());
/// assert_eq!("NAND".parse::<GateKind>().unwrap(), GateKind::Nand);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// Primary input (no fan-in).
    Input,
    /// Logical AND of all fan-ins.
    And,
    /// Logical NAND of all fan-ins.
    Nand,
    /// Logical OR of all fan-ins.
    Or,
    /// Logical NOR of all fan-ins.
    Nor,
    /// Logical XOR (odd parity) of all fan-ins.
    Xor,
    /// Logical XNOR (even parity) of all fan-ins.
    Xnor,
    /// Logical inverter (single fan-in).
    Not,
    /// Buffer (single fan-in).
    Buf,
}

impl GateKind {
    /// All gate variants (excluding [`GateKind::Input`]).
    pub const GATES: [GateKind; 8] = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
    ];

    /// Returns the input value that forces the gate's output regardless of
    /// the other inputs, or `None` if every input always matters
    /// (XOR/XNOR/NOT/BUF and primary inputs).
    ///
    /// This drives the paper's logical-masking term `S_is`: a glitch on one
    /// fan-in propagates only when all *other* fan-ins carry the
    /// **non-controlling** value.
    #[inline]
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            GateKind::Xor | GateKind::Xnor | GateKind::Not | GateKind::Buf | GateKind::Input => {
                None
            }
        }
    }

    /// Returns `true` if the gate logically inverts (NAND/NOR/XNOR/NOT).
    #[inline]
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not
        )
    }

    /// Returns `true` for the primary-input pseudo-kind.
    #[inline]
    pub fn is_input(self) -> bool {
        self == GateKind::Input
    }

    /// Evaluates the gate over boolean fan-in values.
    ///
    /// # Panics
    ///
    /// Panics if called on [`GateKind::Input`] (inputs have no function) or
    /// with an arity the kind does not support (see [`GateKind::arity_ok`]).
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert!(
            self.arity_ok(inputs.len()),
            "gate kind {self} cannot take {} inputs",
            inputs.len()
        );
        match self {
            GateKind::Input => panic!("primary inputs have no logic function"),
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Not => !inputs[0],
            GateKind::Buf => inputs[0],
        }
    }

    /// Returns `true` if a gate of this kind may have `n` fan-ins.
    ///
    /// NOT and BUF are strictly unary; every other gate requires at least
    /// one fan-in (ISCAS'85 files contain the occasional single-input
    /// AND/OR, which degenerate to buffers); primary inputs require zero.
    #[inline]
    pub fn arity_ok(self, n: usize) -> bool {
        match self {
            GateKind::Input => n == 0,
            GateKind::Not | GateKind::Buf => n == 1,
            _ => n >= 1,
        }
    }

    /// Canonical upper-case name used by the `.bench` format.
    pub fn bench_name(self) -> &'static str {
        match self {
            GateKind::Input => "INPUT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUFF",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_name())
    }
}

/// Error returned when parsing a [`GateKind`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGateKindError {
    token: String,
}

impl fmt::Display for ParseGateKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown gate kind `{}`", self.token)
    }
}

impl std::error::Error for ParseGateKindError {}

impl FromStr for GateKind {
    type Err = ParseGateKindError;

    /// Parses the `.bench` gate vocabulary, case-insensitively. Both
    /// `BUF` and `BUFF` are accepted for buffers, and `INV` for `NOT`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "INPUT" => Ok(GateKind::Input),
            "AND" => Ok(GateKind::And),
            "NAND" => Ok(GateKind::Nand),
            "OR" => Ok(GateKind::Or),
            "NOR" => Ok(GateKind::Nor),
            "XOR" => Ok(GateKind::Xor),
            "XNOR" => Ok(GateKind::Xnor),
            "NOT" | "INV" => Ok(GateKind::Not),
            "BUF" | "BUFF" => Ok(GateKind::Buf),
            _ => Err(ParseGateKindError {
                token: s.to_owned(),
            }),
        }
    }
}

/// A node of a [`Circuit`]: a primary input or a gate, together with the
/// net it drives.
///
/// [`Circuit`]: crate::Circuit
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Logic function of the node.
    pub kind: GateKind,
    /// Driving nodes, in pin order. Empty exactly when `kind` is
    /// [`GateKind::Input`].
    pub fanin: Vec<NodeId>,
    /// Net name (unique within the circuit).
    pub name: String,
}

impl Node {
    /// Number of fan-in pins.
    #[inline]
    pub fn fanin_count(&self) -> usize {
        self.fanin.len()
    }

    /// Returns `true` if the node is a primary input.
    #[inline]
    pub fn is_input(&self) -> bool {
        self.kind.is_input()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nand.controlling_value(), Some(false));
        assert_eq!(GateKind::Or.controlling_value(), Some(true));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        for k in [GateKind::Xor, GateKind::Xnor, GateKind::Not, GateKind::Buf] {
            assert_eq!(k.controlling_value(), None, "{k}");
        }
    }

    #[test]
    fn eval_truth_tables_two_input() {
        let cases = [
            (GateKind::And, [false, false, false, true]),
            (GateKind::Nand, [true, true, true, false]),
            (GateKind::Or, [false, true, true, true]),
            (GateKind::Nor, [true, false, false, false]),
            (GateKind::Xor, [false, true, true, false]),
            (GateKind::Xnor, [true, false, false, true]),
        ];
        for (kind, expect) in cases {
            for (i, &e) in expect.iter().enumerate() {
                let a = i & 1 != 0;
                let b = i & 2 != 0;
                assert_eq!(kind.eval(&[a, b]), e, "{kind}({a},{b})");
            }
        }
    }

    #[test]
    fn eval_unary() {
        assert!(GateKind::Not.eval(&[false]));
        assert!(!GateKind::Not.eval(&[true]));
        assert!(GateKind::Buf.eval(&[true]));
        assert!(!GateKind::Buf.eval(&[false]));
    }

    #[test]
    fn xor_is_odd_parity() {
        assert!(GateKind::Xor.eval(&[true, true, true]));
        assert!(!GateKind::Xor.eval(&[true, true, false, false]));
        assert!(GateKind::Xnor.eval(&[true, true, false, false]));
    }

    #[test]
    fn parse_round_trips_bench_names() {
        for kind in GateKind::GATES {
            assert_eq!(kind.bench_name().parse::<GateKind>().unwrap(), kind);
        }
        assert_eq!("input".parse::<GateKind>().unwrap(), GateKind::Input);
        assert_eq!("inv".parse::<GateKind>().unwrap(), GateKind::Not);
        assert_eq!("buf".parse::<GateKind>().unwrap(), GateKind::Buf);
        assert!("MAJORITY".parse::<GateKind>().is_err());
    }

    #[test]
    fn arity_rules() {
        assert!(GateKind::Input.arity_ok(0));
        assert!(!GateKind::Input.arity_ok(1));
        assert!(GateKind::Not.arity_ok(1));
        assert!(!GateKind::Not.arity_ok(2));
        assert!(GateKind::Nand.arity_ok(4));
        assert!(!GateKind::Nand.arity_ok(0));
    }

    #[test]
    #[should_panic(expected = "cannot take")]
    fn eval_rejects_bad_arity() {
        let _ = GateKind::Not.eval(&[true, false]);
    }
}
