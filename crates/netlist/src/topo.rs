//! Topological utilities: levelization and depth measures.
//!
//! All functions work on the cached topological order of a [`Circuit`],
//! so each runs in `O(V + E)`.

use crate::circuit::Circuit;
use crate::id::NodeId;

/// Logic level of every node counted **from the primary inputs**: inputs
/// are level 0, every gate is one more than its deepest fan-in.
///
/// # Example
///
/// ```
/// use ser_netlist::{generate, topo};
///
/// let c17 = generate::c17();
/// let lv = topo::levels_from_inputs(&c17);
/// let depth = lv.iter().max().copied().unwrap();
/// assert_eq!(depth, 3); // c17 is three NAND levels deep
/// ```
pub fn levels_from_inputs(circuit: &Circuit) -> Vec<usize> {
    let mut level = vec![0usize; circuit.node_count()];
    for &id in circuit.topological_order() {
        let node = circuit.node(id);
        level[id.index()] = node
            .fanin
            .iter()
            .map(|f| level[f.index()] + 1)
            .max()
            .unwrap_or(0);
    }
    level
}

/// Logic level of every node counted **towards the primary outputs**: a
/// primary output is level 0; every other node is the minimum distance (in
/// gates) to any primary output it reaches. Nodes that reach no primary
/// output get `usize::MAX`.
///
/// This is the measure the paper uses for Fig. 3 ("nodes that were at most
/// five levels deep from the POs").
pub fn levels_to_outputs(circuit: &Circuit) -> Vec<usize> {
    let mut level = vec![usize::MAX; circuit.node_count()];
    for &po in circuit.primary_outputs() {
        level[po.index()] = 0;
    }
    for &id in circuit.topological_order().iter().rev() {
        let mut best = level[id.index()];
        for &s in circuit.fanout(id) {
            let ls = level[s.index()];
            if ls != usize::MAX {
                best = best.min(ls + 1);
            }
        }
        level[id.index()] = best;
    }
    level
}

/// Longest distance (in gate count) from every node to any primary output
/// it reaches; `usize::MAX` marks unreachable nodes. Useful for worst-case
/// attenuation depth.
pub fn max_levels_to_outputs(circuit: &Circuit) -> Vec<usize> {
    let mut level = vec![usize::MAX; circuit.node_count()];
    for &po in circuit.primary_outputs() {
        level[po.index()] = 0;
    }
    for &id in circuit.topological_order().iter().rev() {
        let mut best = level[id.index()];
        for &s in circuit.fanout(id) {
            let ls = level[s.index()];
            if ls != usize::MAX {
                let cand = ls + 1;
                if best == usize::MAX || cand > best {
                    best = cand;
                }
            }
        }
        level[id.index()] = best;
    }
    level
}

/// Circuit depth: the maximum level from inputs over all nodes.
pub fn depth(circuit: &Circuit) -> usize {
    levels_from_inputs(circuit).into_iter().max().unwrap_or(0)
}

/// Returns node ids grouped by level-from-inputs, level 0 first.
pub fn level_buckets(circuit: &Circuit) -> Vec<Vec<NodeId>> {
    let levels = levels_from_inputs(circuit);
    let depth = levels.iter().max().copied().unwrap_or(0);
    let mut buckets = vec![Vec::new(); depth + 1];
    for (i, &l) in levels.iter().enumerate() {
        buckets[l].push(NodeId::new(i));
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::gate::GateKind;
    use crate::generate;

    /// a -> g -> h(PO), b -> g ; b -> k(PO)
    fn diamondish() -> (Circuit, [NodeId; 5]) {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let bb = b.input("b");
        let g = b.gate(GateKind::And, "g", &[a, bb]).unwrap();
        let h = b.gate(GateKind::Not, "h", &[g]).unwrap();
        let k = b.gate(GateKind::Not, "k", &[bb]).unwrap();
        b.mark_output(h);
        b.mark_output(k);
        (b.finish().unwrap(), [a, bb, g, h, k])
    }

    #[test]
    fn levels_from_inputs_basic() {
        let (c, [a, bb, g, h, k]) = diamondish();
        let lv = levels_from_inputs(&c);
        assert_eq!(lv[a.index()], 0);
        assert_eq!(lv[bb.index()], 0);
        assert_eq!(lv[g.index()], 1);
        assert_eq!(lv[h.index()], 2);
        assert_eq!(lv[k.index()], 1);
    }

    #[test]
    fn levels_to_outputs_basic() {
        let (c, [a, bb, g, h, k]) = diamondish();
        let lv = levels_to_outputs(&c);
        assert_eq!(lv[h.index()], 0);
        assert_eq!(lv[k.index()], 0);
        assert_eq!(lv[g.index()], 1);
        assert_eq!(lv[a.index()], 2);
        assert_eq!(lv[bb.index()], 1); // via k
    }

    #[test]
    fn max_levels_prefers_longer_route() {
        let (c, [_, bb, ..]) = diamondish();
        let lv = max_levels_to_outputs(&c);
        assert_eq!(lv[bb.index()], 2); // via g->h rather than k
    }

    #[test]
    fn c17_depth() {
        assert_eq!(depth(&generate::c17()), 3);
    }

    #[test]
    fn buckets_partition_nodes() {
        let c = generate::c17();
        let buckets = level_buckets(&c);
        let total: usize = buckets.iter().map(|b| b.len()).sum();
        assert_eq!(total, c.node_count());
        assert_eq!(buckets[0].len(), c.primary_inputs().len());
    }
}
