//! Gate-level combinational circuit representation for soft-error analysis.
//!
//! This crate is the structural substrate of the DATE'05 reproduction
//! (*Soft-Error Tolerance Analysis and Optimization of Nanometer Circuits*,
//! Dhillon/Diril/Chatterjee). It provides:
//!
//! * [`Circuit`] — a single-driver netlist of combinational [`GateKind`]
//!   nodes, where every node is either a primary input or a gate and node
//!   identity doubles as net identity (exactly the paper's "gate *i* with
//!   output node *i*" convention);
//! * [`CircuitBuilder`] — incremental, validated construction;
//! * ISCAS'85 `.bench` parsing and writing ([`bench_format`]);
//! * topological utilities ([`topo`]), cones ([`cone`]) and PI→PO path
//!   counting/enumeration ([`paths`]);
//! * flat CSR views and the all-cones arena for hot-path simulation
//!   kernels ([`csr`]);
//! * deterministic benchmark generators ([`generate`]) reproducing the
//!   interface and size of the ISCAS'85 suite used in the paper's
//!   evaluation, plus the exact public-domain `c17`;
//! * structural statistics ([`stats`]).
//!
//! # Example
//!
//! ```
//! use ser_netlist::{generate, GateKind};
//!
//! let c17 = generate::c17();
//! assert_eq!(c17.primary_inputs().len(), 5);
//! assert_eq!(c17.primary_outputs().len(), 2);
//! assert_eq!(c17.gate_count(), 6);
//! assert!(c17.gates().all(|g| c17.node(g).kind == GateKind::Nand));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_format;
mod builder;
mod circuit;
pub mod cone;
pub mod csr;
pub mod dirty;
mod error;
#[cfg(feature = "fail-points")]
pub mod failpoint;
mod gate;
pub mod generate;
pub mod govern;
mod id;
pub mod paths;
pub mod snapshot;
pub mod stats;
pub mod topo;

pub use builder::CircuitBuilder;
pub use circuit::Circuit;
pub use error::{NetlistError, ParseBenchError};
pub use gate::{GateKind, Node};
pub use id::NodeId;

/// Declares a fail point (see [`failpoint`] — the module).
///
/// The one-argument form panics when armed with either action. The
/// two-argument form runs `$on_error` (typically a `return Err(...)`)
/// for `FailAction::Error` and panics for `FailAction::Panic`. The
/// whole expansion is gated on the **consuming** crate's `fail-points`
/// feature, which must forward to `ser_netlist/fail-points`; production
/// builds compile the hook to nothing.
#[macro_export]
macro_rules! failpoint {
    ($name:expr) => {
        #[cfg(feature = "fail-points")]
        {
            if let Some(_action) = $crate::failpoint::check($name) {
                panic!("fail point `{}`: injected panic", $name);
            }
        }
    };
    ($name:expr, $on_error:expr) => {
        #[cfg(feature = "fail-points")]
        {
            match $crate::failpoint::check($name) {
                Some($crate::failpoint::FailAction::Panic) => {
                    panic!("fail point `{}`: injected panic", $name)
                }
                Some($crate::failpoint::FailAction::Error) => $on_error,
                None => {}
            }
        }
    };
}
