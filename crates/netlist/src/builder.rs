use crate::circuit::Circuit;
use crate::error::NetlistError;
use crate::gate::{GateKind, Node};
use crate::id::NodeId;

/// Incremental, validated construction of a [`Circuit`].
///
/// Nodes must be added fan-ins-first (the builder hands out ids as it
/// goes), which makes accidental cycles impossible to *express*; the final
/// [`CircuitBuilder::finish`] still validates everything via
/// [`Circuit::from_parts`].
///
/// # Example
///
/// ```
/// use ser_netlist::{CircuitBuilder, GateKind};
///
/// let mut b = CircuitBuilder::new("mux");
/// let sel = b.input("sel");
/// let a = b.input("a");
/// let c = b.input("b");
/// let nsel = b.gate(GateKind::Not, "nsel", &[sel])?;
/// let t0 = b.gate(GateKind::And, "t0", &[a, sel])?;
/// let t1 = b.gate(GateKind::And, "t1", &[c, nsel])?;
/// let y = b.gate(GateKind::Or, "y", &[t0, t1])?;
/// b.mark_output(y);
/// let mux = b.finish()?;
/// assert_eq!(mux.gate_count(), 4);
/// # Ok::<(), ser_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct CircuitBuilder {
    name: String,
    nodes: Vec<Node>,
    outputs: Vec<NodeId>,
}

impl CircuitBuilder {
    /// Starts an empty circuit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        CircuitBuilder {
            name: name.into(),
            nodes: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Adds a primary input and returns its id.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(Node {
            kind: GateKind::Input,
            fanin: Vec::new(),
            name: name.into(),
        });
        id
    }

    /// Adds a gate and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] if `kind` cannot take
    /// `fanin.len()` pins, or [`NetlistError::DanglingFanin`] if a fan-in
    /// id has not been handed out yet (which would also make a cycle
    /// expressible).
    pub fn gate(
        &mut self,
        kind: GateKind,
        name: impl Into<String>,
        fanin: &[NodeId],
    ) -> Result<NodeId, NetlistError> {
        let id = NodeId::new(self.nodes.len());
        if !kind.arity_ok(fanin.len()) {
            return Err(NetlistError::BadArity {
                node: id,
                kind,
                fanin: fanin.len(),
            });
        }
        for &f in fanin {
            if f.index() >= self.nodes.len() {
                return Err(NetlistError::DanglingFanin {
                    node: id,
                    missing: f,
                });
            }
        }
        self.nodes.push(Node {
            kind,
            fanin: fanin.to_vec(),
            name: name.into(),
        });
        Ok(id)
    }

    /// Marks an existing node as a primary output. Marking the same node
    /// twice is reported by [`CircuitBuilder::finish`].
    pub fn mark_output(&mut self, id: NodeId) -> &mut Self {
        self.outputs.push(id);
        self
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Finalizes the circuit, running full structural validation.
    ///
    /// # Errors
    ///
    /// Propagates any [`NetlistError`] from [`Circuit::from_parts`].
    pub fn finish(self) -> Result<Circuit, NetlistError> {
        Circuit::from_parts(self.name, self.nodes, self.outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_in_order() {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let g = b.gate(GateKind::Buf, "g", &[a]).unwrap();
        b.mark_output(g);
        let c = b.finish().unwrap();
        assert_eq!(c.name(), "t");
        assert_eq!(c.node_count(), 2);
    }

    #[test]
    fn forward_reference_rejected_eagerly() {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let future = NodeId::new(10);
        let err = b.gate(GateKind::And, "g", &[a, future]).unwrap_err();
        assert!(matches!(err, NetlistError::DanglingFanin { .. }));
    }

    #[test]
    fn arity_rejected_eagerly() {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let err = b.gate(GateKind::Not, "g", &[a, a]).unwrap_err();
        assert!(matches!(err, NetlistError::BadArity { .. }));
    }

    #[test]
    fn duplicate_output_reported_at_finish() {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let g = b.gate(GateKind::Not, "g", &[a]).unwrap();
        b.mark_output(g);
        b.mark_output(g);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateOutput { .. }));
    }
}
