//! Structural circuit statistics.

use std::collections::BTreeMap;
use std::fmt;

use crate::circuit::Circuit;
use crate::cone;
use crate::gate::GateKind;
use crate::paths;
use crate::topo;

/// A structural summary of a [`Circuit`], handy for sanity-checking
/// generated benchmarks against their profiles and for reports.
///
/// # Example
///
/// ```
/// use ser_netlist::{generate, stats::CircuitStats};
///
/// let c17 = generate::c17();
/// let s = CircuitStats::compute(&c17);
/// assert_eq!(s.gates, 6);
/// assert_eq!(s.depth, 3);
/// assert_eq!(s.total_paths, 11.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitStats {
    /// Circuit name.
    pub name: String,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Gate count (excluding PIs).
    pub gates: usize,
    /// Fan-in edge count.
    pub edges: usize,
    /// Logic depth in gates.
    pub depth: usize,
    /// Gate count per kind.
    pub kind_histogram: BTreeMap<GateKind, usize>,
    /// Mean fan-out over nodes that have any.
    pub mean_fanout: f64,
    /// Maximum fan-out.
    pub max_fanout: usize,
    /// Total number of PI→PO paths.
    pub total_paths: f64,
    /// Nodes with reconvergent fan-out.
    pub reconvergent_nodes: usize,
}

impl CircuitStats {
    /// Computes all statistics in one pass (plus the `O(V·(V+E))`
    /// reconvergence census, which dominates on big circuits — skip it
    /// with [`CircuitStats::compute_fast`] if that matters).
    pub fn compute(circuit: &Circuit) -> Self {
        let mut s = Self::compute_fast(circuit);
        s.reconvergent_nodes = cone::reconvergent_node_count(circuit);
        s
    }

    /// Like [`CircuitStats::compute`] but leaves `reconvergent_nodes` at 0.
    pub fn compute_fast(circuit: &Circuit) -> Self {
        let mut kind_histogram: BTreeMap<GateKind, usize> = BTreeMap::new();
        for id in circuit.gates() {
            *kind_histogram.entry(circuit.node(id).kind).or_default() += 1;
        }
        let fanouts: Vec<usize> = circuit
            .node_ids()
            .map(|id| circuit.fanout(id).len())
            .collect();
        let with_fanout: Vec<usize> = fanouts.iter().copied().filter(|&f| f > 0).collect();
        let mean_fanout = if with_fanout.is_empty() {
            0.0
        } else {
            with_fanout.iter().sum::<usize>() as f64 / with_fanout.len() as f64
        };
        CircuitStats {
            name: circuit.name().to_owned(),
            inputs: circuit.primary_inputs().len(),
            outputs: circuit.primary_outputs().len(),
            gates: circuit.gate_count(),
            edges: circuit.edge_count(),
            depth: topo::depth(circuit),
            kind_histogram,
            mean_fanout,
            max_fanout: fanouts.into_iter().max().unwrap_or(0),
            total_paths: paths::total_paths(circuit),
            reconvergent_nodes: 0,
        }
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} PI, {} PO, {} gates, {} edges, depth {}",
            self.name, self.inputs, self.outputs, self.gates, self.edges, self.depth
        )?;
        writeln!(
            f,
            "  fan-out mean {:.2} max {}, paths {:.3e}, reconvergent nodes {}",
            self.mean_fanout, self.max_fanout, self.total_paths, self.reconvergent_nodes
        )?;
        write!(f, "  kinds:")?;
        for (k, n) in &self.kind_histogram {
            write!(f, " {k}:{n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn c17_stats() {
        let s = CircuitStats::compute(&generate::c17());
        assert_eq!(s.inputs, 5);
        assert_eq!(s.outputs, 2);
        assert_eq!(s.gates, 6);
        assert_eq!(s.edges, 12);
        assert_eq!(s.depth, 3);
        assert_eq!(s.kind_histogram.get(&GateKind::Nand), Some(&6));
        assert_eq!(s.total_paths, 11.0);
        assert!(s.reconvergent_nodes >= 1);
    }

    #[test]
    fn display_contains_name_and_kinds() {
        let s = CircuitStats::compute(&generate::c17());
        let text = s.to_string();
        assert!(text.contains("c17"));
        assert!(text.contains("NAND:6"));
    }

    #[test]
    fn fast_skips_reconvergence_only() {
        let c = generate::c17();
        let fast = CircuitStats::compute_fast(&c);
        let full = CircuitStats::compute(&c);
        assert_eq!(fast.gates, full.gates);
        assert_eq!(fast.reconvergent_nodes, 0);
        assert!(full.reconvergent_nodes > 0);
    }
}
