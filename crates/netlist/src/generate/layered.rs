//! Random layered-DAG circuit generator with ISCAS-like structure.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::builder::CircuitBuilder;
use crate::circuit::Circuit;
use crate::gate::GateKind;
use crate::id::NodeId;

/// Relative frequency of each gate kind emitted by [`layered`].
///
/// The default mix mirrors the NAND-heavy ISCAS'85 profile.
#[derive(Debug, Clone, PartialEq)]
pub struct GateMix {
    /// `(kind, weight)` pairs; weights need not sum to 1.
    pub weights: Vec<(GateKind, f64)>,
}

impl Default for GateMix {
    fn default() -> Self {
        GateMix {
            weights: vec![
                (GateKind::Nand, 0.30),
                (GateKind::And, 0.16),
                (GateKind::Nor, 0.12),
                (GateKind::Or, 0.12),
                (GateKind::Not, 0.16),
                (GateKind::Xor, 0.05),
                (GateKind::Xnor, 0.03),
                (GateKind::Buf, 0.06),
            ],
        }
    }
}

impl GateMix {
    /// A mix without inverters/buffers, used for layers that must accept
    /// extra pins (e.g. the primary-output layer).
    pub fn multi_input_only(&self) -> GateMix {
        GateMix {
            weights: self
                .weights
                .iter()
                .filter(|(k, _)| !matches!(k, GateKind::Not | GateKind::Buf))
                .cloned()
                .collect(),
        }
    }

    fn sample(&self, rng: &mut StdRng) -> GateKind {
        let total: f64 = self.weights.iter().map(|(_, w)| w).sum();
        let mut x = rng.random::<f64>() * total;
        for &(kind, w) in &self.weights {
            if x < w {
                return kind;
            }
            x -= w;
        }
        self.weights.last().expect("non-empty mix").0
    }
}

/// Parameters for [`layered`].
#[derive(Debug, Clone, PartialEq)]
pub struct LayeredSpec {
    /// Circuit name.
    pub name: String,
    /// Number of primary inputs.
    pub n_inputs: usize,
    /// Number of primary outputs (each is a dedicated gate in the last
    /// layer).
    pub n_outputs: usize,
    /// Total gate count, output gates included. Honoured exactly.
    pub n_gates: usize,
    /// Target logic depth (number of gate layers). Clamped so every layer
    /// holds at least one gate.
    pub depth: usize,
    /// RNG seed; equal specs generate equal circuits.
    pub seed: u64,
    /// Gate-kind mix.
    pub mix: GateMix,
    /// Maximum fan-in for generated gates (≥ 2).
    pub max_fanin: usize,
}

impl LayeredSpec {
    /// A reasonable spec with default mix, depth scaled as `3·ln(gates)`,
    /// and max fan-in 4.
    pub fn new(name: impl Into<String>, n_inputs: usize, n_outputs: usize, n_gates: usize) -> Self {
        let depth = ((n_gates as f64).ln() * 3.0).round().clamp(3.0, 48.0) as usize;
        LayeredSpec {
            name: name.into(),
            n_inputs,
            n_outputs,
            n_gates,
            depth,
            seed: 0x5EED_0BAD_CAFE,
            mix: GateMix::default(),
            max_fanin: 4,
        }
    }
}

/// Generates a random layered combinational circuit.
///
/// Structure: primary inputs form layer 0; gates fill `depth` layers with
/// a mid-heavy size profile; each gate draws its first fan-in from the
/// previous layer (so layers advance depth) and the rest from earlier
/// layers with geometric bias towards nearby ones (locality plus
/// occasional long-range edges — the recipe for reconvergent fan-out).
/// Dangling nodes are folded in as extra pins of downstream multi-input
/// gates, so — like the real benchmarks — (almost) every net is observed.
///
/// # Panics
///
/// Panics if `n_inputs == 0`, `n_outputs == 0`, `max_fanin < 2`, or
/// `n_gates < n_outputs`.
pub fn layered(spec: &LayeredSpec) -> Circuit {
    assert!(spec.n_inputs > 0, "need at least one primary input");
    assert!(spec.n_outputs > 0, "need at least one primary output");
    assert!(spec.max_fanin >= 2, "max_fanin must be at least 2");
    assert!(
        spec.n_gates >= spec.n_outputs,
        "gate budget smaller than the output count"
    );

    let mut rng = StdRng::seed_from_u64(spec.seed);
    let internal = spec.n_gates - spec.n_outputs;
    // Layers 1..=depth-1 are internal; layer `depth` is the PO layer.
    // Clamp depth so every internal layer has at least one gate.
    let depth = if internal == 0 {
        1
    } else {
        spec.depth.max(2).min(internal + 1)
    };
    let n_internal_layers = depth.saturating_sub(1);

    // Mid-heavy triangular layer-size profile.
    let mut layer_sizes = vec![0usize; n_internal_layers];
    if n_internal_layers > 0 {
        let weights: Vec<f64> = (0..n_internal_layers)
            .map(|l| 1.0 + (l.min(n_internal_layers - 1 - l) as f64).sqrt())
            .collect();
        let total: f64 = weights.iter().sum();
        let mut assigned = 0usize;
        for (l, w) in weights.iter().enumerate() {
            let share = ((w / total) * internal as f64).floor() as usize;
            layer_sizes[l] = share.max(1);
            assigned += layer_sizes[l];
        }
        // Fix rounding drift deterministically.
        let mut l = 0usize;
        while assigned < internal {
            layer_sizes[l % n_internal_layers] += 1;
            assigned += 1;
            l += 1;
        }
        while assigned > internal {
            let idx = layer_sizes
                .iter()
                .enumerate()
                .filter(|(_, &s)| s > 1)
                .map(|(i, _)| i)
                .next_back()
                .expect("cannot shrink below one gate per layer");
            layer_sizes[idx] -= 1;
            assigned -= 1;
        }
    }

    let mut b = CircuitBuilder::new(spec.name.clone());
    let mut layers: Vec<Vec<NodeId>> = Vec::with_capacity(depth + 1);
    let pis: Vec<NodeId> = (0..spec.n_inputs)
        .map(|i| b.input(format!("{}", i + 1)))
        .collect();
    layers.push(pis);

    let mut next_name = spec.n_inputs + 1;
    let multi_mix = spec.mix.multi_input_only();

    for (li, &size) in layer_sizes.iter().enumerate() {
        let layer_no = li + 1;
        let mut this_layer = Vec::with_capacity(size);
        for _ in 0..size {
            let kind = spec.mix.sample(&mut rng);
            let id = emit_gate(
                &mut b,
                &mut rng,
                kind,
                &layers,
                layer_no,
                spec.max_fanin,
                &mut next_name,
            );
            this_layer.push(id);
        }
        layers.push(this_layer);
    }

    // Primary-output layer: always multi-input kinds so dangling nodes can
    // be folded in below.
    let po_layer_no = layers.len();
    let mut po_layer = Vec::with_capacity(spec.n_outputs);
    for _ in 0..spec.n_outputs {
        let kind = multi_mix.sample(&mut rng);
        let id = emit_gate(
            &mut b,
            &mut rng,
            kind,
            &layers,
            po_layer_no,
            spec.max_fanin,
            &mut next_name,
        );
        po_layer.push(id);
    }
    for &po in &po_layer {
        b.mark_output(po);
    }
    layers.push(po_layer);

    // Fold dangling nodes (no fan-out, not PO) into downstream gates by
    // rebuilding node fan-ins. We work on raw parts for this step.
    let circuit = b
        .finish()
        .expect("layered construction is structurally valid");
    fold_dangling(circuit, &layers, &mut rng)
}

/// Emits one gate whose first pin comes from the immediately preceding
/// layer and whose remaining pins come from earlier layers with geometric
/// locality bias.
fn emit_gate(
    b: &mut CircuitBuilder,
    rng: &mut StdRng,
    kind: GateKind,
    layers: &[Vec<NodeId>],
    layer_no: usize,
    max_fanin: usize,
    next_name: &mut usize,
) -> NodeId {
    let n_pins = match kind {
        GateKind::Not | GateKind::Buf => 1,
        _ => {
            // Mostly 2, sometimes 3..max.
            let r = rng.random::<f64>();
            if r < 0.62 {
                2
            } else if r < 0.88 {
                3.min(max_fanin)
            } else {
                max_fanin
            }
        }
    };
    let mut pins: Vec<NodeId> = Vec::with_capacity(n_pins);
    let prev = &layers[layer_no - 1];
    pins.push(prev[rng.random_range(0..prev.len())]);
    while pins.len() < n_pins {
        // Geometric hop back through layers.
        let mut l = layer_no - 1;
        while l > 0 && rng.random::<f64>() < 0.45 {
            l -= 1;
        }
        let cand = layers[l][rng.random_range(0..layers[l].len())];
        if !pins.contains(&cand) {
            pins.push(cand);
        } else if rng.random::<f64>() < 0.1 {
            break; // accept a smaller fan-in occasionally rather than spin
        }
    }
    let name = format!("{}", *next_name);
    *next_name += 1;
    b.gate(kind, name, &pins)
        .expect("pins reference already-emitted nodes")
}

/// Appends every dangling (fan-out-free, non-PO) node as an extra pin of a
/// multi-input gate in a strictly later layer. Falls back to leaving the
/// node dangling when no host exists (never happens with the PO layer
/// restricted to multi-input kinds, unless fan-ins saturate).
fn fold_dangling(circuit: Circuit, layers: &[Vec<NodeId>], rng: &mut StdRng) -> Circuit {
    let mut layer_of = vec![0usize; circuit.node_count()];
    for (l, ids) in layers.iter().enumerate() {
        for &id in ids {
            layer_of[id.index()] = l;
        }
    }
    let name = circuit.name().to_owned();
    let pos = circuit.primary_outputs().to_vec();
    let dangling: Vec<NodeId> = circuit
        .node_ids()
        .filter(|&id| circuit.fanout(id).is_empty() && !circuit.is_primary_output(id))
        .collect();
    let mut nodes = circuit.nodes().to_vec();
    let n_layers = layers.len();
    for d in dangling {
        let dl = layer_of[d.index()];
        // Try a handful of random later-layer hosts.
        let mut placed = false;
        for _ in 0..64 {
            let hl = rng.random_range((dl + 1).max(1)..n_layers);
            let host = layers[hl][rng.random_range(0..layers[hl].len())];
            let hnode = &mut nodes[host.index()];
            let appendable = !matches!(hnode.kind, GateKind::Not | GateKind::Buf | GateKind::Input);
            if appendable && !hnode.fanin.contains(&d) {
                hnode.fanin.push(d);
                placed = true;
                break;
            }
        }
        if !placed {
            // Deterministic sweep as a last resort.
            'sweep: for layer in layers.iter().take(n_layers).skip((dl + 1).max(1)) {
                for &host in layer {
                    let hnode = &mut nodes[host.index()];
                    let appendable =
                        !matches!(hnode.kind, GateKind::Not | GateKind::Buf | GateKind::Input);
                    if appendable && !hnode.fanin.contains(&d) {
                        hnode.fanin.push(d);
                        break 'sweep;
                    }
                }
            }
        }
    }
    Circuit::from_parts(name, nodes, pos).expect("folding preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo;

    #[test]
    fn honours_exact_counts() {
        let spec = LayeredSpec::new("t", 12, 5, 80);
        let c = layered(&spec);
        assert_eq!(c.primary_inputs().len(), 12);
        assert_eq!(c.primary_outputs().len(), 5);
        assert_eq!(c.gate_count(), 80);
    }

    #[test]
    fn deterministic_for_equal_specs() {
        let spec = LayeredSpec::new("t", 10, 4, 60);
        assert_eq!(layered(&spec), layered(&spec));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = LayeredSpec::new("t", 10, 4, 60);
        let mut b = a.clone();
        a.seed = 1;
        b.seed = 2;
        assert_ne!(layered(&a), layered(&b));
    }

    #[test]
    fn no_dangling_nodes_in_practice() {
        let spec = LayeredSpec::new("t", 16, 6, 120);
        let c = layered(&spec);
        let dangling = c
            .node_ids()
            .filter(|&id| c.fanout(id).is_empty() && !c.is_primary_output(id))
            .count();
        assert_eq!(dangling, 0);
    }

    #[test]
    fn depth_is_near_target() {
        let mut spec = LayeredSpec::new("t", 16, 6, 200);
        spec.depth = 15;
        let c = layered(&spec);
        let d = topo::depth(&c);
        assert!((13..=17).contains(&d), "depth {d} far from target 15");
    }

    #[test]
    fn tiny_budget_works() {
        let spec = LayeredSpec::new("t", 2, 1, 1);
        let c = layered(&spec);
        assert_eq!(c.gate_count(), 1);
    }

    #[test]
    fn mix_without_inverters_in_po_layer() {
        let spec = LayeredSpec::new("t", 8, 10, 40);
        let c = layered(&spec);
        for &po in c.primary_outputs() {
            let k = c.node(po).kind;
            assert!(!matches!(k, GateKind::Not | GateKind::Buf), "PO kind {k}");
        }
    }
}
