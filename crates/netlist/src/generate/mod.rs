//! Deterministic benchmark-circuit generators.
//!
//! The original ISCAS'85 netlists cannot be bundled here, so this module
//! generates stand-ins that reproduce each benchmark's *interface and
//! size* (PI/PO/gate counts) with ISCAS-like structure — reconvergent
//! fan-out, realistic depth and gate mix — deterministically from a fixed
//! seed. `c17` is reproduced exactly (it is six NAND gates of public
//! record); `c499`/`c1355` are generated as genuine 32-bit
//! single-error-correcting circuits because the paper's c499 result
//! (unreliability irreducible) depends on that structure; `c6288` is a
//! real array multiplier.
//!
//! Real `.bench` files, when available, drop in through
//! [`bench_format::parse`](crate::bench_format::parse) and every
//! downstream tool works unchanged.
//!
//! # Example
//!
//! ```
//! use ser_netlist::generate;
//!
//! let c432 = generate::iscas85("c432").unwrap();
//! assert_eq!(c432.primary_inputs().len(), 36);
//! assert_eq!(c432.primary_outputs().len(), 7);
//! assert_eq!(c432.gate_count(), 160);
//! // Deterministic: same call, same circuit.
//! assert_eq!(generate::iscas85("c432").unwrap(), c432);
//! ```

mod arith;
mod ecc;
mod iscas;
mod layered;
mod sram;
mod tiled;

pub use arith::{multiplier, multiplier_with_style, ripple_carry_adder, CellStyle};
pub use ecc::{sec32, sec32_codeword, sec32_nand};
pub use iscas::{c17, iscas85, iscas85_suite, IscasProfile, ISCAS85_PROFILES, TABLE1_CIRCUITS};
pub use layered::{layered, GateMix, LayeredSpec};
pub use sram::{sram_periphery, SramSpec};
pub use tiled::{tiled, TiledSpec};
