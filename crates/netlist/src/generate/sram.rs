//! SRAM-periphery generator: predecoded row decoders, column mux /
//! sense-amp trees and write drivers.
//!
//! Memory periphery is the canonical *wide* soft-error workload: a row
//! decoder fans a few address bits out to hundreds of wordlines (many
//! shallow, disjoint cones — one PO each), while the read path funnels
//! many bitlines through per-bit OR trees into a handful of data
//! outputs (deep reconvergent cones — few POs). Both shapes stress the
//! analysis engine differently from random logic, and a wordline glitch
//! is a real SER hazard (it falsely selects a row), so treating
//! wordlines as observable outputs matches the paper's model.
//!
//! The generated block contains, for an `rows × cols × data_width`
//! array:
//!
//! * a **row decoder**: per-bit complement inverters, 2-bit predecode
//!   AND groups, one AND + buffer driver per wordline (gated by `en`);
//! * a **column read path** per data bit: column-select decode over the
//!   column address, bitline AND column-select terms, a balanced OR
//!   mux tree and a two-inverter sense/output stage;
//! * a **write path** per data bit: `AND(din, we)` plus a buffer
//!   driver.
//!
//! Everything is purely structural — no RNG — so equal specs generate
//! equal circuits by construction.

use crate::builder::CircuitBuilder;
use crate::circuit::Circuit;
use crate::gate::GateKind;
use crate::id::NodeId;

/// Parameters for [`sram_periphery`].
#[derive(Debug, Clone, PartialEq)]
pub struct SramSpec {
    /// Circuit name.
    pub name: String,
    /// Wordlines (rows of the array). At least 2.
    pub rows: usize,
    /// Columns multiplexed per data bit. At least 1.
    pub cols: usize,
    /// Data bits. At least 1.
    pub data_width: usize,
}

impl SramSpec {
    /// A spec for an `rows × cols × data_width` array periphery.
    pub fn new(name: impl Into<String>, rows: usize, cols: usize, data_width: usize) -> Self {
        SramSpec {
            name: name.into(),
            rows,
            cols,
            data_width,
        }
    }
}

/// Generates the periphery block (see the module docs).
///
/// Primary inputs: row address (`⌈log2 rows⌉` bits), column address
/// (`⌈log2 cols⌉` bits), `en`, `we`, per-bit `din`, and one bitline per
/// `(bit, column)`. Primary outputs: `rows` wordline drivers, one
/// `dout` and one write driver per data bit.
///
/// # Panics
///
/// Panics if `rows < 2`, `cols < 1` or `data_width < 1`.
pub fn sram_periphery(spec: &SramSpec) -> Circuit {
    assert!(spec.rows >= 2, "need at least two rows");
    assert!(spec.cols >= 1, "need at least one column");
    assert!(spec.data_width >= 1, "need at least one data bit");

    let mut b = CircuitBuilder::new(spec.name.clone());
    let a_row = ceil_log2(spec.rows);
    let a_col = ceil_log2(spec.cols);

    let row_addr: Vec<NodeId> = (0..a_row).map(|i| b.input(format!("ra{i}"))).collect();
    let col_addr: Vec<NodeId> = (0..a_col).map(|i| b.input(format!("ca{i}"))).collect();
    let en = b.input("en");
    let we = b.input("we");
    let din: Vec<NodeId> = (0..spec.data_width)
        .map(|d| b.input(format!("din{d}")))
        .collect();
    let bitlines: Vec<Vec<NodeId>> = (0..spec.data_width)
        .map(|d| {
            (0..spec.cols)
                .map(|c| b.input(format!("bl{d}_{c}")))
                .collect()
        })
        .collect();

    // --- Row decoder: complements, 2-bit predecode, wordline ANDs.
    let row_lines = decode_lines(&mut b, &row_addr, "r");
    for r in 0..spec.rows {
        let mut pins: Vec<NodeId> = select_pins(&row_lines, r);
        pins.push(en);
        let wl = b
            .gate(GateKind::And, format!("wl{r}"), &pins)
            .expect("decoder pins already emitted");
        let drv = b
            .gate(GateKind::Buf, format!("wld{r}"), &[wl])
            .expect("wordline driver");
        b.mark_output(drv);
    }

    // --- Column select lines (shared by all data bits).
    let col_lines = decode_lines(&mut b, &col_addr, "c");
    let col_sel: Vec<NodeId> = (0..spec.cols)
        .map(|c| {
            let pins = select_pins(&col_lines, c);
            match pins.len() {
                0 => en, // single column: always selected while enabled
                1 => pins[0],
                _ => b
                    .gate(GateKind::And, format!("csel{c}"), &pins)
                    .expect("column decode pins already emitted"),
            }
        })
        .collect();

    // --- Read path per data bit: bitline·select terms, OR mux tree,
    // sense stage.
    for (d, bits) in bitlines.iter().enumerate() {
        let terms: Vec<NodeId> = (0..spec.cols)
            .map(|c| {
                b.gate(GateKind::And, format!("t{d}_{c}"), &[bits[c], col_sel[c]])
                    .expect("mux term pins already emitted")
            })
            .collect();
        let mux = or_tree(&mut b, &terms, &format!("m{d}"));
        let s1 = b
            .gate(GateKind::Not, format!("sa{d}"), &[mux])
            .expect("sense input stage");
        let dout = b
            .gate(GateKind::Not, format!("dout{d}"), &[s1])
            .expect("sense output stage");
        b.mark_output(dout);
    }

    // --- Write path per data bit.
    for (d, &di) in din.iter().enumerate() {
        let wd = b
            .gate(GateKind::And, format!("wd{d}"), &[di, we])
            .expect("write gate pins already emitted");
        let drv = b
            .gate(GateKind::Buf, format!("wdrv{d}"), &[wd])
            .expect("write driver");
        b.mark_output(drv);
    }

    b.finish().expect("periphery construction is valid")
}

/// Decoded line groups for an address: bits are paired into 2-bit
/// predecode groups of four AND lines each (a trailing odd bit
/// contributes a `[complement, bit]` group directly). `select_pins`
/// later picks one line per group for a given index.
fn decode_lines(b: &mut CircuitBuilder, addr: &[NodeId], prefix: &str) -> Vec<Vec<NodeId>> {
    let comps: Vec<NodeId> = addr
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            b.gate(GateKind::Not, format!("{prefix}n{i}"), &[a])
                .expect("complement of an input")
        })
        .collect();
    let mut groups = Vec::new();
    let mut i = 0usize;
    while i + 1 < addr.len() {
        let (a0, n0) = (addr[i], comps[i]);
        let (a1, n1) = (addr[i + 1], comps[i + 1]);
        let mut lines = Vec::with_capacity(4);
        for v in 0..4u32 {
            let p0 = if v & 1 == 0 { n0 } else { a0 };
            let p1 = if v & 2 == 0 { n1 } else { a1 };
            lines.push(
                b.gate(GateKind::And, format!("{prefix}p{i}_{v}"), &[p0, p1])
                    .expect("predecode pins already emitted"),
            );
        }
        groups.push(lines);
        i += 2;
    }
    if i < addr.len() {
        groups.push(vec![comps[i], addr[i]]);
    }
    groups
}

/// One decoded line per predecode group for index `idx` (group `g`
/// consumes the next `log2(group len)` low bits).
fn select_pins(groups: &[Vec<NodeId>], idx: usize) -> Vec<NodeId> {
    let mut pins = Vec::with_capacity(groups.len());
    let mut rest = idx;
    for lines in groups {
        pins.push(lines[rest % lines.len()]);
        rest /= lines.len();
    }
    pins
}

/// Balanced two-input OR reduction; a single term passes through.
fn or_tree(b: &mut CircuitBuilder, terms: &[NodeId], prefix: &str) -> NodeId {
    assert!(!terms.is_empty(), "OR tree needs at least one term");
    let mut level: Vec<NodeId> = terms.to_vec();
    let mut n = 0usize;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.chunks_exact(2);
        for pair in &mut it {
            let g = b
                .gate(GateKind::Or, format!("{prefix}_{n}"), &[pair[0], pair[1]])
                .expect("tree pins already emitted");
            n += 1;
            next.push(g);
        }
        next.extend(it.remainder().iter().copied());
        level = next;
    }
    level[0]
}

fn ceil_log2(n: usize) -> usize {
    assert!(n >= 1);
    (usize::BITS - (n - 1).leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::{ConeArena, CsrView};

    #[test]
    fn interface_counts_match_the_spec() {
        let spec = SramSpec::new("m", 16, 4, 8);
        let c = sram_periphery(&spec);
        // ra×4, ca×2, en, we, din×8, bl×32.
        assert_eq!(c.primary_inputs().len(), 4 + 2 + 1 + 1 + 8 + 32);
        // 16 wordlines + 8 douts + 8 write drivers.
        assert_eq!(c.primary_outputs().len(), 16 + 8 + 8);
    }

    #[test]
    fn deterministic_by_construction() {
        let spec = SramSpec::new("m", 8, 2, 4);
        assert_eq!(sram_periphery(&spec), sram_periphery(&spec));
    }

    #[test]
    fn non_power_of_two_rows_and_single_column_work() {
        let c = sram_periphery(&SramSpec::new("m", 5, 1, 2));
        assert_eq!(
            c.primary_outputs().len(),
            5 + 2 + 2,
            "5 wordlines, 2 douts, 2 write drivers"
        );
        let d = sram_periphery(&SramSpec::new("m", 3, 3, 1));
        assert_eq!(d.primary_outputs().len(), 3 + 1 + 1);
    }

    #[test]
    fn wordline_cones_are_shallow_and_disjoint_per_po() {
        // The decoder shape: every address complement/predecode node
        // reaches many wordline POs, but each wordline AND reaches
        // exactly its own.
        let spec = SramSpec::new("m", 16, 4, 2);
        let c = sram_periphery(&spec);
        let csr = CsrView::build(&c);
        let arena = ConeArena::build(&csr);
        let wl0 = c.find("wl0").unwrap();
        assert_eq!(arena.reachable_cols(wl0.index()).len(), 1);
        let ra0 = c.find("ra0").unwrap();
        assert!(
            arena.reachable_cols(ra0.index()).len() >= 16,
            "an address bit fans out to every wordline"
        );
    }

    #[test]
    fn read_path_funnels_all_bitlines_into_one_po() {
        let spec = SramSpec::new("m", 8, 8, 1);
        let c = sram_periphery(&spec);
        let csr = CsrView::build(&c);
        let arena = ConeArena::build(&csr);
        for col in 0..8 {
            let bl = c.find(&format!("bl0_{col}")).unwrap();
            let cols = arena.reachable_cols(bl.index());
            assert_eq!(cols.len(), 1, "bitline {col} reaches only dout");
        }
    }
}
