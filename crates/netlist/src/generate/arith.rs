//! Arithmetic circuit generators: ripple-carry adders and array
//! multipliers (the c6288 family).

use crate::builder::CircuitBuilder;
use crate::circuit::Circuit;
use crate::gate::GateKind;
use crate::id::NodeId;

/// Adder-cell realization style for [`multiplier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CellStyle {
    /// XOR/AND/OR cells: 5-gate full adder, 2-gate half adder.
    #[default]
    Canonical,
    /// NOR-dominated cells like the real c6288: 9-NOR full adder,
    /// 5-NOR + 1-NOT half adder.
    Nor,
}

/// Full adder from 9 NOR2 gates (the c6288 cell family).
///
/// Derivation: `n4 = XNOR(x,y)` from four NORs; `n5 = NOR(n4, z)`;
/// `sum = XNOR(n4', z)`-style from three more; and
/// `carry = NOR(n1, n5) = (x+y)·(XNOR(x,y)+z) = xy + (x+y)z = maj(x,y,z)`.
fn full_adder_nor(
    b: &mut CircuitBuilder,
    x: NodeId,
    y: NodeId,
    z: NodeId,
    tag: &str,
) -> (NodeId, NodeId) {
    let g = |b: &mut CircuitBuilder, n: &str, pins: &[NodeId]| {
        b.gate(GateKind::Nor, format!("{tag}_{n}"), pins)
            .expect("pins exist")
    };
    let n1 = g(b, "n1", &[x, y]);
    let n2 = g(b, "n2", &[x, n1]);
    let n3 = g(b, "n3", &[y, n1]);
    let n4 = g(b, "n4", &[n2, n3]); // XNOR(x, y)
    let n5 = g(b, "n5", &[n4, z]);
    let n6 = g(b, "n6", &[n4, n5]);
    let n7 = g(b, "n7", &[z, n5]);
    let sum = g(b, "s", &[n6, n7]); // XOR(x, y, z)
    let carry = g(b, "c", &[n1, n5]); // maj(x, y, z)
    (sum, carry)
}

/// Half adder from 5 NOR2 gates plus one inverter.
fn half_adder_nor(b: &mut CircuitBuilder, x: NodeId, y: NodeId, tag: &str) -> (NodeId, NodeId) {
    let g = |b: &mut CircuitBuilder, n: &str, pins: &[NodeId]| {
        b.gate(GateKind::Nor, format!("{tag}_{n}"), pins)
            .expect("pins exist")
    };
    let n1 = g(b, "n1", &[x, y]);
    let n2 = g(b, "n2", &[x, n1]);
    let n3 = g(b, "n3", &[y, n1]);
    let n4 = g(b, "n4", &[n2, n3]); // XNOR(x, y)
    let sum = b
        .gate(GateKind::Not, format!("{tag}_s"), &[n4])
        .expect("pins exist");
    let carry = g(b, "c", &[n1, sum]); // (x+y)·XNOR(x,y) = x·y
    (sum, carry)
}

/// Full adder from 2 XOR, 2 AND, 1 OR. Returns `(sum, carry)`.
fn full_adder(
    b: &mut CircuitBuilder,
    x: NodeId,
    y: NodeId,
    z: NodeId,
    tag: &str,
) -> (NodeId, NodeId) {
    let s1 = b
        .gate(GateKind::Xor, format!("{tag}_s1"), &[x, y])
        .expect("pins exist");
    let sum = b
        .gate(GateKind::Xor, format!("{tag}_s"), &[s1, z])
        .expect("pins exist");
    let c1 = b
        .gate(GateKind::And, format!("{tag}_c1"), &[x, y])
        .expect("pins exist");
    let c2 = b
        .gate(GateKind::And, format!("{tag}_c2"), &[s1, z])
        .expect("pins exist");
    let carry = b
        .gate(GateKind::Or, format!("{tag}_c"), &[c1, c2])
        .expect("pins exist");
    (sum, carry)
}

/// Half adder from 1 XOR, 1 AND. Returns `(sum, carry)`.
fn half_adder(b: &mut CircuitBuilder, x: NodeId, y: NodeId, tag: &str) -> (NodeId, NodeId) {
    let sum = b
        .gate(GateKind::Xor, format!("{tag}_s"), &[x, y])
        .expect("pins exist");
    let carry = b
        .gate(GateKind::And, format!("{tag}_c"), &[x, y])
        .expect("pins exist");
    (sum, carry)
}

/// An `n`-bit ripple-carry adder: inputs `a0..`, `b0..`, `cin`; outputs
/// `s0..s{n-1}`, `cout`.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// use ser_netlist::generate;
///
/// let add4 = generate::ripple_carry_adder("add4", 4);
/// assert_eq!(add4.primary_inputs().len(), 9);  // 4 + 4 + carry-in
/// assert_eq!(add4.primary_outputs().len(), 5); // 4 sums + carry-out
/// ```
pub fn ripple_carry_adder(name: &str, n: usize) -> Circuit {
    assert!(n > 0, "adder width must be positive");
    let mut b = CircuitBuilder::new(name);
    let a: Vec<NodeId> = (0..n).map(|i| b.input(format!("a{i}"))).collect();
    let bb: Vec<NodeId> = (0..n).map(|i| b.input(format!("b{i}"))).collect();
    let mut carry = b.input("cin");
    for i in 0..n {
        let (s, c) = full_adder(&mut b, a[i], bb[i], carry, &format!("fa{i}"));
        b.mark_output(s);
        carry = c;
    }
    b.mark_output(carry);
    b.finish().expect("adder structure is valid")
}

/// An `n×m` unsigned array multiplier with [`CellStyle::Canonical`] adder
/// cells. See [`multiplier_with_style`].
pub fn multiplier(name: &str, n: usize, m: usize) -> Circuit {
    multiplier_with_style(name, n, m, CellStyle::Canonical)
}

/// An `n×m` unsigned array multiplier (carry-save partial-product rows,
/// ripple final row). `multiplier_with_style("c6288", 16, 16,
/// CellStyle::Nor)` reproduces ISCAS'85 c6288's interface (32 PIs, 32 POs)
/// and its NOR-dominated cell structure to within ~2% of its 2406 gates.
///
/// # Panics
///
/// Panics if either width is zero.
pub fn multiplier_with_style(name: &str, n: usize, m: usize, style: CellStyle) -> Circuit {
    assert!(n > 0 && m > 0, "multiplier widths must be positive");
    let mut b = CircuitBuilder::new(name);
    let a: Vec<NodeId> = (0..n).map(|i| b.input(format!("a{i}"))).collect();
    let x: Vec<NodeId> = (0..m).map(|j| b.input(format!("b{j}"))).collect();

    // Partial products p[i][j] = a_i AND b_j, weight i+j.
    let mut pp: Vec<Vec<NodeId>> = vec![Vec::new(); n + m];
    for i in 0..n {
        for j in 0..m {
            let p = b
                .gate(GateKind::And, format!("pp_{i}_{j}"), &[a[i], x[j]])
                .expect("pins exist");
            pp[i + j].push(p);
        }
    }

    // Reduce each weight column to at most one bit with half/full adders,
    // pushing carries to the next column (Wallace-ish serial reduction).
    let mut outputs = Vec::with_capacity(n + m);
    let mut tag = 0usize;
    for w in 0..(n + m) {
        while pp[w].len() > 1 {
            if pp[w].len() >= 3 {
                let z = pp[w].pop().expect("len>=3");
                let y = pp[w].pop().expect("len>=2");
                let xbit = pp[w].pop().expect("len>=1");
                let (s, c) = match style {
                    CellStyle::Canonical => full_adder(&mut b, xbit, y, z, &format!("r{tag}")),
                    CellStyle::Nor => full_adder_nor(&mut b, xbit, y, z, &format!("r{tag}")),
                };
                tag += 1;
                pp[w].push(s);
                if w + 1 < pp.len() {
                    pp[w + 1].push(c);
                }
            } else {
                let y = pp[w].pop().expect("len==2");
                let xbit = pp[w].pop().expect("len==1");
                let (s, c) = match style {
                    CellStyle::Canonical => half_adder(&mut b, xbit, y, &format!("r{tag}")),
                    CellStyle::Nor => half_adder_nor(&mut b, xbit, y, &format!("r{tag}")),
                };
                tag += 1;
                pp[w].push(s);
                if w + 1 < pp.len() {
                    pp[w + 1].push(c);
                }
            }
        }
        let bit = pp[w].pop().unwrap_or_else(|| {
            // Empty column (can only be the top one): tie down via x0 AND NOT x0? —
            // never happens for n,m >= 1 because column n+m-1 receives carries.
            unreachable!("every product column holds at least one bit")
        });
        outputs.push(bit);
    }
    for o in outputs {
        b.mark_output(o);
    }
    b.finish().expect("multiplier structure is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_u64(c: &Circuit, assign: &dyn Fn(&str) -> bool) -> u64 {
        let mut value = vec![false; c.node_count()];
        for &id in c.topological_order() {
            let node = c.node(id);
            value[id.index()] = if node.is_input() {
                assign(&node.name)
            } else {
                let pins: Vec<bool> = node.fanin.iter().map(|f| value[f.index()]).collect();
                node.kind.eval(&pins)
            };
        }
        c.primary_outputs()
            .iter()
            .enumerate()
            .map(|(k, po)| (value[po.index()] as u64) << k)
            .sum()
    }

    #[test]
    fn adder_adds() {
        let c = ripple_carry_adder("add4", 4);
        for (a, b, cin) in [(0u64, 0u64, 0u64), (5, 9, 0), (15, 15, 1), (8, 7, 1)] {
            let out = eval_u64(&c, &|name: &str| {
                if let Some(i) = name.strip_prefix('a').and_then(|s| s.parse::<u32>().ok()) {
                    a >> i & 1 == 1
                } else if let Some(i) = name.strip_prefix('b').and_then(|s| s.parse::<u32>().ok()) {
                    b >> i & 1 == 1
                } else {
                    cin == 1
                }
            });
            assert_eq!(out, a + b + cin, "{a}+{b}+{cin}");
        }
    }

    #[test]
    fn multiplier_multiplies() {
        let c = multiplier("mul4", 4, 4);
        for (a, b) in [(0u64, 0u64), (3, 5), (15, 15), (7, 9), (12, 11)] {
            let out = eval_u64(&c, &|name: &str| {
                if let Some(i) = name.strip_prefix('a').and_then(|s| s.parse::<u32>().ok()) {
                    a >> i & 1 == 1
                } else if let Some(i) = name.strip_prefix('b').and_then(|s| s.parse::<u32>().ok()) {
                    b >> i & 1 == 1
                } else {
                    false
                }
            });
            assert_eq!(out, a * b, "{a}*{b}");
        }
    }

    #[test]
    fn c6288_like_interface() {
        let c = multiplier_with_style("c6288", 16, 16, CellStyle::Nor);
        assert_eq!(c.primary_inputs().len(), 32);
        assert_eq!(c.primary_outputs().len(), 32);
        // The real c6288 has 2406 gates; the NOR-cell array lands within a
        // few percent.
        let g = c.gate_count() as f64;
        assert!((2100.0..=2700.0).contains(&g), "got {g}");
    }

    #[test]
    fn nor_multiplier_matches_canonical_function() {
        let canon = multiplier("m", 3, 3);
        let nor = multiplier_with_style("m", 3, 3, CellStyle::Nor);
        for a in 0u64..8 {
            for b in 0u64..8 {
                let assign = |name: &str| {
                    if let Some(i) = name.strip_prefix('a').and_then(|s| s.parse::<u32>().ok()) {
                        a >> i & 1 == 1
                    } else if let Some(i) =
                        name.strip_prefix('b').and_then(|s| s.parse::<u32>().ok())
                    {
                        b >> i & 1 == 1
                    } else {
                        false
                    }
                };
                assert_eq!(eval_u64(&canon, &assign), a * b);
                assert_eq!(eval_u64(&nor, &assign), a * b, "{a}*{b} (NOR cells)");
            }
        }
    }

    #[test]
    fn adder_gate_count_scales_linearly() {
        let c8 = ripple_carry_adder("a8", 8);
        let c16 = ripple_carry_adder("a16", 16);
        assert_eq!(c8.gate_count() * 2, c16.gate_count());
    }
}
