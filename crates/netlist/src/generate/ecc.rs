//! Generators for 32-bit single-error-correcting (SEC) circuits in the
//! mould of ISCAS'85 `c499`/`c1355`.
//!
//! The paper's most instructive negative result is that SERTOPT cannot
//! reduce c499's unreliability: c499 is itself an error-correcting
//! circuit, and ASERTA injects exactly the single-node upsets the circuit
//! was designed to tolerate. Reproducing that result requires a genuine
//! SEC structure, not a random DAG — so this generator builds one:
//!
//! * 32 data inputs `d0..d31`, 8 check inputs `c0..c7`, 1 enable `en`
//!   (41 PIs, c499's interface);
//! * 8 syndrome bits, each a balanced XOR tree over its member data bits
//!   and one check bit, with every data bit participating in exactly 4
//!   syndromes (distinct 4-of-8 patterns make single data-bit errors
//!   decodable); the trees contain 32·4 = 128 XOR2 gates in total;
//! * per-bit error indicators `e_i = AND(gated syndromes in pattern(i))`;
//! * corrected outputs `o_i = XOR(d_i, e_i)` (32 POs).
//!
//! Gate count: 8·16 XOR + 8 AND (enable gating) + 32 AND + 32 XOR = 200,
//! within 1% of c499's 202.

use crate::builder::CircuitBuilder;
use crate::circuit::Circuit;
use crate::gate::GateKind;
use crate::id::NodeId;

/// Number of data bits in the SEC generators.
pub const DATA_BITS: usize = 32;
/// Number of syndrome/check bits.
pub const CHECK_BITS: usize = 8;

/// The 4-of-8 syndrome membership pattern of data bit `i`.
///
/// Patterns are the 8 rotations of 4 weight-4 masks from distinct rotation
/// classes — 32 distinct patterns (unambiguous AND-decode) with every
/// syndrome position covered by exactly 16 data bits (balanced XOR trees).
fn pattern(i: usize) -> u8 {
    debug_assert!(i < DATA_BITS);
    const BASES: [u8; 4] = [0x0F, 0x17, 0x1B, 0x1D];
    BASES[i / 8].rotate_left((i % 8) as u32)
}

/// Builds a balanced XOR tree over `leaves`, returning the root.
fn xor_tree(
    b: &mut CircuitBuilder,
    leaves: &[NodeId],
    prefix: &str,
    counter: &mut usize,
    expand_nand: bool,
) -> NodeId {
    assert!(!leaves.is_empty());
    let mut level: Vec<NodeId> = leaves.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                let name = format!("{prefix}_{counter}");
                *counter += 1;
                let g = if expand_nand {
                    nand_xor2(b, pair[0], pair[1], &name)
                } else {
                    b.gate(GateKind::Xor, name, &[pair[0], pair[1]])
                        .expect("xor tree pins exist")
                };
                next.push(g);
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    level[0]
}

/// XOR2 realized as the classic four-NAND network (what distinguishes
/// c1355 from c499).
fn nand_xor2(b: &mut CircuitBuilder, x: NodeId, y: NodeId, name: &str) -> NodeId {
    let m = b
        .gate(GateKind::Nand, format!("{name}_m"), &[x, y])
        .expect("pins exist");
    let p = b
        .gate(GateKind::Nand, format!("{name}_p"), &[x, m])
        .expect("pins exist");
    let q = b
        .gate(GateKind::Nand, format!("{name}_q"), &[y, m])
        .expect("pins exist");
    b.gate(GateKind::Nand, name.to_owned(), &[p, q])
        .expect("pins exist")
}

fn build_sec32(name: &str, expand_nand: bool) -> Circuit {
    let mut b = CircuitBuilder::new(name);
    let data: Vec<NodeId> = (0..DATA_BITS).map(|i| b.input(format!("d{i}"))).collect();
    let check: Vec<NodeId> = (0..CHECK_BITS).map(|j| b.input(format!("c{j}"))).collect();
    let enable = b.input("en");

    // Syndromes: XOR of member data bits and the check bit.
    let mut counter = 0usize;
    let mut gated = Vec::with_capacity(CHECK_BITS);
    for (j, &check_j) in check.iter().enumerate() {
        let members: Vec<NodeId> = (0..DATA_BITS)
            .filter(|&i| pattern(i) & (1 << j) != 0)
            .map(|i| data[i])
            .chain(std::iter::once(check_j))
            .collect();
        debug_assert!(members.len() >= 2, "syndrome {j} has no data members");
        let s = xor_tree(
            &mut b,
            &members,
            &format!("s{j}"),
            &mut counter,
            expand_nand,
        );
        let g = b
            .gate(GateKind::And, format!("g{j}"), &[s, enable])
            .expect("pins exist");
        gated.push(g);
    }

    // Error indicators and corrected outputs.
    for (i, &data_i) in data.iter().enumerate() {
        let p = pattern(i);
        let pins: Vec<NodeId> = (0..CHECK_BITS)
            .filter(|&j| p & (1 << j) != 0)
            .map(|j| gated[j])
            .collect();
        let e = b
            .gate(GateKind::And, format!("e{i}"), &pins)
            .expect("pins exist");
        let o = b
            .gate(GateKind::Xor, format!("o{i}"), &[data_i, e])
            .expect("pins exist");
        b.mark_output(o);
    }

    b.finish().expect("SEC structure is valid")
}

/// A 32-bit single-error-correcting circuit with c499's interface
/// (41 PIs, 32 POs) and, to within 1%, its gate count.
pub fn sec32(name: &str) -> Circuit {
    build_sec32(name, false)
}

/// The consistent primary-input vector (in PI declaration order:
/// `d0..d31`, `c0..c7`, `en`) encoding `data` as a valid codeword with
/// correction enabled — every syndrome evaluates to 0, so [`sec32`]
/// passes the word through unchanged and corrects any single data-bit
/// upset on top of it.
///
/// # Example
///
/// ```
/// use ser_netlist::generate::sec32_codeword;
///
/// let v = sec32_codeword(0xDEAD_BEEF);
/// assert_eq!(v.len(), 41);
/// assert!(v[40], "correction enabled");
/// ```
pub fn sec32_codeword(data: u32) -> Vec<bool> {
    let mut v = Vec::with_capacity(DATA_BITS + CHECK_BITS + 1);
    for i in 0..DATA_BITS {
        v.push(data >> i & 1 == 1);
    }
    for j in 0..CHECK_BITS {
        // c_j = XOR of the member data bits ⇒ syndrome j = 0.
        let mut parity = false;
        for i in 0..DATA_BITS {
            if pattern(i) & (1 << j) != 0 {
                parity ^= data >> i & 1 == 1;
            }
        }
        v.push(parity);
    }
    v.push(true); // en
    v
}

/// The same SEC circuit with every XOR expanded into the four-NAND
/// network — the c499 → c1355 transformation.
pub fn sec32_nand(name: &str) -> Circuit {
    build_sec32(name, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    fn eval(c: &Circuit, assignment: &dyn Fn(&str) -> bool) -> Vec<bool> {
        let mut value = vec![false; c.node_count()];
        for &id in c.topological_order() {
            let node = c.node(id);
            value[id.index()] = if node.is_input() {
                assignment(&node.name)
            } else {
                let pins: Vec<bool> = node.fanin.iter().map(|f| value[f.index()]).collect();
                node.kind.eval(&pins)
            };
        }
        c.primary_outputs()
            .iter()
            .map(|po| value[po.index()])
            .collect()
    }

    /// Check bits consistent with all-zero data are all zero (every
    /// syndrome is XOR of zeros).
    fn zero_assignment(name: &str) -> bool {
        name == "en"
    }

    #[test]
    fn interface_matches_c499() {
        let c = sec32("c499");
        assert_eq!(c.primary_inputs().len(), 41);
        assert_eq!(c.primary_outputs().len(), 32);
        assert_eq!(c.gate_count(), 200);
    }

    #[test]
    fn patterns_are_distinct_weight4() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..DATA_BITS {
            let p = pattern(i);
            assert_eq!(p.count_ones(), 4);
            assert!(seen.insert(p));
        }
    }

    #[test]
    fn clean_word_passes_through() {
        let c = sec32("c499");
        let out = eval(&c, &zero_assignment);
        assert!(out.iter().all(|&b| !b), "zero word should decode to zero");
    }

    #[test]
    fn single_data_error_is_corrected() {
        let c = sec32("c499");
        for flip in [0usize, 7, 31] {
            let flipped = format!("d{flip}");
            let out = eval(&c, &|name: &str| name == "en" || name == flipped);
            assert!(
                out.iter().all(|&b| !b),
                "flip of d{flip} must be corrected back to the zero word"
            );
        }
    }

    #[test]
    fn check_bit_error_is_ignored_for_data() {
        let c = sec32("c499");
        let out = eval(&c, &|name: &str| name == "en" || name == "c3");
        // A check-bit error produces a weight-1 syndrome, which matches no
        // weight-4 data pattern, so the data word is untouched.
        assert!(out.iter().all(|&b| !b));
    }

    #[test]
    fn disabled_correction_passes_data_raw() {
        let c = sec32("c499");
        let out = eval(&c, &|name: &str| name == "d5");
        // en=0: no correction, so the flipped bit shows through.
        let expect: Vec<bool> = (0..DATA_BITS).map(|i| i == 5).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn nand_variant_is_xor_free_and_bigger() {
        let c = sec32_nand("c1355");
        assert_eq!(c.primary_inputs().len(), 41);
        assert_eq!(c.primary_outputs().len(), 32);
        let xor_in_syndromes = c
            .gates()
            .filter(|&g| c.node(g).kind == GateKind::Xor && c.node(g).name.starts_with('s'))
            .count();
        assert_eq!(xor_in_syndromes, 0);
        assert!(c.gate_count() > sec32("c499").gate_count() * 2);
    }

    #[test]
    fn nand_variant_still_corrects() {
        let c = sec32_nand("c1355");
        let out = eval(&c, &|name: &str| name == "en" || name == "d12");
        assert!(out.iter().all(|&b| !b));
    }

    #[test]
    fn codeword_decodes_to_its_data_and_survives_single_upsets() {
        let c = sec32("c499");
        for data in [0u32, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x1234_5678] {
            let v = sec32_codeword(data);
            let by_name = |name: &str| -> bool {
                let idx = c
                    .primary_inputs()
                    .iter()
                    .position(|&pi| c.node(pi).name == name)
                    .expect("known PI name");
                v[idx]
            };
            let out = eval(&c, &by_name);
            for (i, &bit) in out.iter().enumerate() {
                assert_eq!(bit, data >> i & 1 == 1, "bit {i} of {data:#x}");
            }
            // One corrupted data bit on the wire: still decodes to data.
            let flipped = format!("d{}", data.count_ones() % 32);
            let with_upset = |name: &str| by_name(name) ^ (name == flipped);
            let out2 = eval(&c, &with_upset);
            for (i, &bit) in out2.iter().enumerate() {
                assert_eq!(bit, data >> i & 1 == 1, "upset bit {i} of {data:#x}");
            }
        }
    }
}
