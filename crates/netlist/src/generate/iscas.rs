//! The ISCAS'85 benchmark suite: exact `c17` plus interface-faithful
//! generated stand-ins for the rest (see the module docs of
//! [`generate`](crate::generate) for the substitution rationale).

use crate::bench_format;
use crate::circuit::Circuit;

use super::{layered, multiplier_with_style, sec32, sec32_nand, CellStyle, LayeredSpec};

/// Documented interface of one ISCAS'85 benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IscasProfile {
    /// Benchmark name (`"c432"`, …).
    pub name: &'static str,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Gate count of the original netlist.
    pub gates: usize,
    /// Approximate logic depth of the original netlist.
    pub depth: usize,
    /// One-line description from the ISCAS'85 documentation.
    pub function: &'static str,
}

/// The ten classic ISCAS'85 benchmarks, with their documented interface
/// sizes. The seven used in the paper's Table 1 are c432, c499, c1908,
/// c2670, c3540, c5315 and c7552.
pub const ISCAS85_PROFILES: [IscasProfile; 11] = [
    IscasProfile {
        name: "c17",
        inputs: 5,
        outputs: 2,
        gates: 6,
        depth: 3,
        function: "toy NAND network",
    },
    IscasProfile {
        name: "c432",
        inputs: 36,
        outputs: 7,
        gates: 160,
        depth: 17,
        function: "27-channel interrupt controller",
    },
    IscasProfile {
        name: "c499",
        inputs: 41,
        outputs: 32,
        gates: 202,
        depth: 11,
        function: "32-bit single-error-correcting circuit",
    },
    IscasProfile {
        name: "c880",
        inputs: 60,
        outputs: 26,
        gates: 383,
        depth: 24,
        function: "8-bit ALU",
    },
    IscasProfile {
        name: "c1355",
        inputs: 41,
        outputs: 32,
        gates: 546,
        depth: 24,
        function: "32-bit SEC circuit (NAND-expanded c499)",
    },
    IscasProfile {
        name: "c1908",
        inputs: 33,
        outputs: 25,
        gates: 880,
        depth: 40,
        function: "16-bit SEC/DED circuit",
    },
    IscasProfile {
        name: "c2670",
        inputs: 233,
        outputs: 140,
        gates: 1193,
        depth: 32,
        function: "12-bit ALU and controller",
    },
    IscasProfile {
        name: "c3540",
        inputs: 50,
        outputs: 22,
        gates: 1669,
        depth: 47,
        function: "8-bit ALU",
    },
    IscasProfile {
        name: "c5315",
        inputs: 178,
        outputs: 123,
        gates: 2307,
        depth: 49,
        function: "9-bit ALU",
    },
    IscasProfile {
        name: "c6288",
        inputs: 32,
        outputs: 32,
        gates: 2406,
        depth: 124,
        function: "16x16 array multiplier",
    },
    IscasProfile {
        name: "c7552",
        inputs: 207,
        outputs: 108,
        gates: 3512,
        depth: 43,
        function: "32-bit adder/comparator",
    },
];

const C17_BENCH: &str = "\
# c17 (exact public-domain netlist)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

/// The exact ISCAS'85 `c17` netlist (six NAND2 gates).
pub fn c17() -> Circuit {
    bench_format::parse(C17_BENCH, "c17").expect("bundled c17 netlist is valid")
}

/// Returns the (generated) ISCAS'85 benchmark with the given name, or
/// `None` for an unknown name.
///
/// * `c17` — exact netlist;
/// * `c499`/`c1355` — genuine 32-bit SEC circuits (interface-exact, gate
///   count within a few percent);
/// * `c6288` — real 16×16 array multiplier (interface-exact);
/// * all others — seeded layered DAGs with the documented PI/PO/gate
///   counts and approximate depth.
///
/// Deterministic: repeated calls return identical circuits.
///
/// # Example
///
/// ```
/// use ser_netlist::generate;
///
/// let c7552 = generate::iscas85("c7552").unwrap();
/// assert_eq!(c7552.gate_count(), 3512);
/// assert!(generate::iscas85("c9000").is_none());
/// ```
pub fn iscas85(name: &str) -> Option<Circuit> {
    let profile = ISCAS85_PROFILES.iter().find(|p| p.name == name)?;
    Some(match profile.name {
        "c17" => c17(),
        "c499" => sec32("c499"),
        "c1355" => sec32_nand("c1355"),
        "c6288" => multiplier_with_style("c6288", 16, 16, CellStyle::Nor),
        _ => {
            let mut spec =
                LayeredSpec::new(profile.name, profile.inputs, profile.outputs, profile.gates);
            spec.depth = profile.depth;
            // Distinct, stable seed per benchmark.
            spec.seed = 0xC0FFEE ^ fnv1a(profile.name);
            layered(&spec)
        }
    })
}

/// All benchmarks evaluated in the paper's Table 1, in table order.
pub const TABLE1_CIRCUITS: [&str; 7] =
    ["c432", "c499", "c1908", "c2670", "c3540", "c5315", "c7552"];

/// Generates the whole suite (excluding any unknown names), preserving
/// input order.
pub fn iscas85_suite(names: &[&str]) -> Vec<Circuit> {
    names.iter().filter_map(|n| iscas85(n)).collect()
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c17_is_exact() {
        let c = c17();
        assert_eq!(c.gate_count(), 6);
        assert_eq!(c.primary_inputs().len(), 5);
        assert_eq!(c.primary_outputs().len(), 2);
    }

    #[test]
    fn every_profile_generates_with_exact_interface() {
        for p in ISCAS85_PROFILES {
            let c = iscas85(p.name).unwrap();
            assert_eq!(c.primary_inputs().len(), p.inputs, "{} PIs", p.name);
            assert_eq!(c.primary_outputs().len(), p.outputs, "{} POs", p.name);
            if !matches!(p.name, "c499" | "c1355" | "c6288") {
                assert_eq!(c.gate_count(), p.gates, "{} gates", p.name);
            } else {
                let lo = p.gates as f64 * 0.85;
                let hi = p.gates as f64 * 1.15;
                let g = c.gate_count() as f64;
                assert!(g >= lo && g <= hi, "{}: {g} outside [{lo},{hi}]", p.name);
            }
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(iscas85("c404").is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(iscas85("c1908"), iscas85("c1908"));
    }

    #[test]
    fn table1_suite_generates_in_order() {
        let suite = iscas85_suite(&TABLE1_CIRCUITS);
        assert_eq!(suite.len(), 7);
        assert_eq!(suite[0].name(), "c432");
        assert_eq!(suite[6].name(), "c7552");
    }
}
