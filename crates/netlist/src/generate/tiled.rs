//! Tiled large-circuit generator: many private-input layered tiles whose
//! outputs feed a small set of parity-compaction trees.
//!
//! [`layered`](super::layered) alone does not scale to 100k gates as an
//! *analysis* workload: with shared primary inputs every node's fan-out
//! cone grows with the whole circuit, so cone-based kernels degenerate
//! to quadratic work and memory. Real designs are not like that — they
//! are blocks with private interfaces whose observability funnels
//! through a narrow compaction/merge layer (test compactors, ECC check
//! trees, bus muxes). [`tiled`] reproduces that shape:
//!
//! * each tile is an independent [`layered`] circuit with *private*
//!   primary inputs, so fan-out cones stay bounded by the tile size;
//! * tile outputs are folded into `n_outputs` balanced XOR trees
//!   (round-robin assignment), so the final PO count — and with it the
//!   width of every reachability list — stays small no matter how many
//!   tiles there are.
//!
//! The result is a deep, wide topology whose per-node cone size and
//! reachable-PO count are both `O(tile)` — exactly the regime where the
//! chunked cone arena and sparse width tables pay off, and an honest
//! stand-in for the nanometer-scale netlists the paper targets.

use crate::builder::CircuitBuilder;
use crate::circuit::Circuit;
use crate::gate::GateKind;
use crate::id::NodeId;

use super::layered::{layered, LayeredSpec};

/// Parameters for [`tiled`].
#[derive(Debug, Clone, PartialEq)]
pub struct TiledSpec {
    /// Circuit name.
    pub name: String,
    /// Number of independent tiles.
    pub tiles: usize,
    /// Primary inputs per tile (private to that tile).
    pub tile_inputs: usize,
    /// Outputs per tile feeding the compaction trees.
    pub tile_outputs: usize,
    /// Gates per tile (before the extra gates a remainder distribution
    /// may add — see [`TiledSpec::scaled`]).
    pub tile_gates: usize,
    /// Extra gates distributed one-per-tile to the first `remainder`
    /// tiles, so a total budget is honoured exactly.
    pub remainder: usize,
    /// Number of final primary outputs (XOR-tree roots).
    pub n_outputs: usize,
    /// RNG seed; equal specs generate equal circuits.
    pub seed: u64,
}

impl TiledSpec {
    /// A spec honouring `n_gates` **exactly**, with tile size ~1.6k,
    /// eight tile outputs and eight final POs — the `layered100k`-class
    /// constructor (`scaled(name, 100_000)`) behind the scaling
    /// benchmarks.
    ///
    /// # Panics
    ///
    /// Panics if `n_gates < 16` (too small to tile meaningfully — use
    /// [`layered`] directly).
    pub fn scaled(name: impl Into<String>, n_gates: usize) -> Self {
        assert!(n_gates >= 16, "tiled circuits start at 16 gates");
        let n_outputs = 8usize;
        let tiles = (n_gates / 1600).clamp(1, 1024);
        let tile_outputs = 8usize;
        // Each XOR tree of L leaves costs L-1 two-input gates; with
        // `tiles·tile_outputs` leaves split over `n_outputs` trees the
        // compaction layer costs `leaves - n_outputs` gates (zero when a
        // tree has a single leaf: the tile output is the PO).
        let leaves = tiles * tile_outputs;
        let reduction = leaves.saturating_sub(n_outputs.min(leaves));
        let tile_budget = n_gates
            .checked_sub(reduction)
            .expect("reduction layer exceeds gate budget");
        let tile_gates = tile_budget / tiles;
        let remainder = tile_budget - tile_gates * tiles;
        assert!(
            tile_gates >= tile_outputs,
            "per-tile budget {tile_gates} below the tile output count"
        );
        TiledSpec {
            name: name.into(),
            tiles,
            tile_inputs: (tile_gates / 64).max(8),
            tile_outputs,
            tile_gates,
            remainder,
            n_outputs: n_outputs.min(leaves),
            seed: 0x711E_D00D,
        }
    }

    /// Total gate count the spec will generate.
    pub fn total_gates(&self) -> usize {
        let leaves = self.tiles * self.tile_outputs;
        let reduction = leaves.saturating_sub(self.n_outputs);
        self.tiles * self.tile_gates + self.remainder + reduction
    }
}

/// Generates a tiled circuit (see the module docs).
///
/// # Panics
///
/// Panics on a degenerate spec: zero tiles/inputs/outputs, a per-tile
/// gate budget below the tile output count, or more final outputs than
/// tree leaves.
pub fn tiled(spec: &TiledSpec) -> Circuit {
    assert!(spec.tiles > 0, "need at least one tile");
    assert!(spec.n_outputs > 0, "need at least one primary output");
    let leaves_total = spec.tiles * spec.tile_outputs;
    assert!(
        spec.n_outputs <= leaves_total,
        "more final outputs than tile-output leaves"
    );

    let mut b = CircuitBuilder::new(spec.name.clone());
    // Round-robin leaf assignment: tile output `i` (global order) feeds
    // tree `i % n_outputs`.
    let mut tree_leaves: Vec<Vec<NodeId>> = vec![Vec::new(); spec.n_outputs];
    let mut leaf_no = 0usize;

    for t in 0..spec.tiles {
        let extra = usize::from(t < spec.remainder);
        let tile_spec = LayeredSpec::new(
            format!("{}_t{}", spec.name, t),
            spec.tile_inputs,
            spec.tile_outputs,
            spec.tile_gates + extra,
        );
        let tile_spec = LayeredSpec {
            seed: spec
                .seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1)),
            ..tile_spec
        };
        let tile = layered(&tile_spec);
        let map = splice(&mut b, &tile, &format!("t{t}"));
        for &po in tile.primary_outputs() {
            tree_leaves[leaf_no % spec.n_outputs].push(map[po.index()]);
            leaf_no += 1;
        }
    }

    for (j, leaves) in tree_leaves.into_iter().enumerate() {
        let root = xor_tree(&mut b, &leaves, &format!("x{j}"));
        b.mark_output(root);
    }
    b.finish()
        .expect("tiled construction is structurally valid")
}

/// Re-emits `tile`'s nodes into `b` in index order (topologically valid:
/// the builder hands out ids fan-ins-first and the dangling-fold only
/// appends earlier-layer pins to later-layer gates). Inputs become fresh
/// private primary inputs. Returns the old→new id map.
fn splice(b: &mut CircuitBuilder, tile: &Circuit, prefix: &str) -> Vec<NodeId> {
    let mut map = Vec::with_capacity(tile.node_count());
    let mut pins: Vec<NodeId> = Vec::new();
    for id in tile.node_ids() {
        let node = tile.node(id);
        let new_id = if node.is_input() {
            b.input(format!("{prefix}_{}", node.name))
        } else {
            pins.clear();
            pins.extend(node.fanin.iter().map(|f| map[f.index()]));
            b.gate(node.kind, format!("{prefix}_{}", node.name), &pins)
                .expect("spliced pins reference already-emitted nodes")
        };
        map.push(new_id);
    }
    map
}

/// Balanced two-input XOR reduction of `leaves`; a single leaf is
/// returned as-is (the caller marks it as the output).
fn xor_tree(b: &mut CircuitBuilder, leaves: &[NodeId], prefix: &str) -> NodeId {
    assert!(!leaves.is_empty(), "XOR tree needs at least one leaf");
    let mut level: Vec<NodeId> = leaves.to_vec();
    let mut n = 0usize;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.chunks_exact(2);
        for pair in &mut it {
            let g = b
                .gate(GateKind::Xor, format!("{prefix}_{n}"), &[pair[0], pair[1]])
                .expect("tree pins already emitted");
            n += 1;
            next.push(g);
        }
        next.extend(it.remainder().iter().copied());
        level = next;
    }
    level[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::{ConeArena, CsrView};
    use crate::topo;

    #[test]
    fn scaled_spec_honours_exact_totals() {
        for target in [1_000usize, 4_321, 10_000, 100_000] {
            let spec = TiledSpec::scaled("s", target);
            assert_eq!(spec.total_gates(), target, "target {target}");
            let c = tiled(&spec);
            assert_eq!(c.gate_count(), target, "generated {target}");
            assert_eq!(c.primary_outputs().len(), spec.n_outputs);
        }
    }

    #[test]
    fn deterministic_for_equal_specs() {
        let spec = TiledSpec::scaled("s", 3_000);
        assert_eq!(tiled(&spec), tiled(&spec));
    }

    #[test]
    fn tile_inputs_are_private() {
        let spec = TiledSpec::scaled("s", 10_000);
        let c = tiled(&spec);
        assert_eq!(
            c.primary_inputs().len(),
            spec.tiles * spec.tile_inputs,
            "each tile must own its inputs"
        );
    }

    #[test]
    fn cones_stay_tile_bounded() {
        // The scaling property the generator exists for: no fan-out cone
        // approaches the circuit size, and every node reaches only a few
        // POs.
        let spec = TiledSpec::scaled("s", 10_000);
        let c = tiled(&spec);
        let csr = CsrView::build(&c);
        let arena = ConeArena::build(&csr);
        let n = c.node_count();
        for i in 0..n {
            assert!(
                arena.cone(i).len() * 4 < n,
                "cone of node {i} spans {}/{} nodes",
                arena.cone(i).len(),
                n
            );
            assert!(
                arena.reachable_cols(i).len() <= spec.n_outputs,
                "node {i} reaches too many POs"
            );
        }
    }

    #[test]
    fn structure_is_deep_and_observable() {
        let spec = TiledSpec::scaled("s", 3_000);
        let c = tiled(&spec);
        assert!(topo::depth(&c) >= 10, "tiles plus trees must be deep");
        let dangling = c
            .node_ids()
            .filter(|&id| c.fanout(id).is_empty() && !c.is_primary_output(id))
            .count();
        assert_eq!(dangling, 0, "every net must be observed");
    }
}
