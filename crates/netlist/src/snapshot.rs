//! A compact, versioned, checksummed binary container for durable
//! snapshots (`.sersnap` files).
//!
//! The format is deliberately simple — a fixed header followed by
//! independently CRC-checked sections — so the decoder can reject every
//! kind of on-disk damage (truncation, bit flips, version skew,
//! duplicated or missing sections, trailing garbage) with a typed
//! [`SnapshotError`] instead of panicking or silently accepting a wrong
//! payload:
//!
//! ```text
//! magic   8 B   "SERSNAP\0"
//! version u32   FORMAT_VERSION
//! count   u32   number of sections
//! then per section:
//!   tag     4 B   FourCC section name
//!   len     u64   payload length in bytes
//!   crc     u32   CRC-32 (IEEE) of tag ‖ len ‖ payload
//!   payload len B
//! ```
//!
//! All integers are little-endian; `f64` values are stored as their IEEE
//! bit patterns, so round trips are bitwise exact. Writes go through
//! [`SnapshotWriter::write_atomic`]: the bytes land in a temporary file
//! in the destination directory which is atomically renamed over the
//! target, so a crash mid-write (exercised by the `snapshot::torn_write`
//! fail point) can never tear an existing snapshot.
//!
//! This module also carries the [`Circuit`] section codec, whose decoder
//! funnels through [`Circuit::from_parts`] so every structural invariant
//! (arity, acyclicity, name uniqueness, dangling references) is
//! re-validated on restore.
//!
//! # Example
//!
//! ```
//! use ser_netlist::snapshot::{Snapshot, SnapshotWriter, SectionTag};
//!
//! const TAG: SectionTag = SectionTag(*b"DEMO");
//! let mut w = SnapshotWriter::new();
//! w.begin_section(TAG);
//! w.f64(1.5);
//! w.str("hello");
//! w.end_section();
//! let bytes = w.to_bytes();
//!
//! let snap = Snapshot::from_bytes(&bytes).unwrap();
//! let mut s = snap.section(TAG).unwrap();
//! assert_eq!(s.f64().unwrap(), 1.5);
//! assert_eq!(s.str().unwrap(), "hello");
//! s.finish().unwrap();
//! ```

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::circuit::Circuit;
use crate::gate::{GateKind, Node};
use crate::id::NodeId;

/// The 8-byte file magic opening every snapshot.
pub const MAGIC: [u8; 8] = *b"SERSNAP\0";

/// Current container format version. Decoders reject anything else with
/// [`SnapshotError::UnsupportedVersion`].
pub const FORMAT_VERSION: u32 = 1;

/// The section holding a [`Circuit`] (see [`write_circuit_section`]).
pub const TAG_CIRCUIT: SectionTag = SectionTag(*b"CIRC");

/// A FourCC section name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SectionTag(pub [u8; 4]);

impl fmt::Display for SectionTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.iter().all(|b| b.is_ascii_graphic() || *b == b' ') {
            for &b in &self.0 {
                write!(f, "{}", b as char)?;
            }
            Ok(())
        } else {
            write!(f, "{:02x?}", self.0)
        }
    }
}

/// Typed decode/encode failure of a snapshot file.
///
/// Every variant is a *rejection*: the decoder never hands back a
/// partially-parsed or silently-corrupt payload.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Filesystem-level failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The container was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this decoder supports.
        supported: u32,
    },
    /// The file ends before the advertised structure does.
    Truncated {
        /// What the decoder was reading when the bytes ran out.
        context: &'static str,
    },
    /// A section's payload does not match its stored CRC-32.
    CrcMismatch {
        /// The damaged section.
        section: SectionTag,
    },
    /// The same section tag appears twice.
    DuplicateSection {
        /// The repeated tag.
        section: SectionTag,
    },
    /// A required section is absent.
    MissingSection {
        /// The absent tag.
        section: SectionTag,
    },
    /// Bytes remain after the last advertised section.
    TrailingBytes {
        /// How many unexpected bytes follow the structure.
        extra: usize,
    },
    /// A section's payload is structurally invalid (bad length, code,
    /// UTF-8, or a domain invariant its consumer re-validates).
    Malformed {
        /// The offending section.
        section: SectionTag,
        /// Human-readable cause.
        reason: String,
    },
    /// A fault-injection hook forced this failure (`fail-points` builds
    /// only).
    FaultInjected(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (supports {supported})"
                )
            }
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            SnapshotError::CrcMismatch { section } => {
                write!(f, "CRC mismatch in section `{section}`")
            }
            SnapshotError::DuplicateSection { section } => {
                write!(f, "duplicate section `{section}`")
            }
            SnapshotError::MissingSection { section } => {
                write!(f, "missing section `{section}`")
            }
            SnapshotError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after the last section")
            }
            SnapshotError::Malformed { section, reason } => {
                write!(f, "malformed section `{section}`: {reason}")
            }
            SnapshotError::FaultInjected(name) => {
                write!(f, "fault injected at `{name}`")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn crc32_feed(mut state: u32, bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    for &b in bytes {
        state = table[((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_feed(!0, bytes)
}

/// The stored per-section checksum covers the framing too (tag and
/// length), so a bit flip anywhere in a section — not just its payload —
/// is caught.
fn section_crc(tag: SectionTag, body: &[u8]) -> u32 {
    let mut state = crc32_feed(!0, &tag.0);
    state = crc32_feed(state, &(body.len() as u64).to_le_bytes());
    !crc32_feed(state, body)
}

/// Builds a snapshot section by section, then serializes or atomically
/// writes the container.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    sections: Vec<(SectionTag, Vec<u8>)>,
    current: Option<(SectionTag, Vec<u8>)>,
}

impl SnapshotWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a new section; primitives write into it until
    /// [`end_section`](Self::end_section).
    ///
    /// # Panics
    ///
    /// Panics if a section is already open (encoder bug, not data).
    pub fn begin_section(&mut self, tag: SectionTag) {
        assert!(self.current.is_none(), "section already open");
        self.current = Some((tag, Vec::new()));
    }

    /// Closes the open section.
    ///
    /// # Panics
    ///
    /// Panics if no section is open.
    pub fn end_section(&mut self) {
        let done = self.current.take().expect("no section open");
        self.sections.push(done);
    }

    fn buf(&mut self) -> &mut Vec<u8> {
        &mut self.current.as_mut().expect("no section open").1
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf().push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf().extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf().extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE bit pattern (bitwise exact).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends raw bytes (no length prefix; the section carries one).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf().extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.u64(v.len() as u64);
        self.buf().extend_from_slice(v.as_bytes());
    }

    /// Appends a length-prefixed `u32` vector.
    pub fn vec_u32(&mut self, v: &[u32]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u32(x);
        }
    }

    /// Appends a length-prefixed `f64` vector (bitwise exact).
    pub fn vec_f64(&mut self, v: &[f64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.f64(x);
        }
    }

    /// Serializes the container to bytes.
    ///
    /// # Panics
    ///
    /// Panics if a section is still open.
    pub fn to_bytes(&self) -> Vec<u8> {
        assert!(self.current.is_none(), "unclosed section");
        let payload: usize = self.sections.iter().map(|(_, b)| b.len() + 16).sum();
        let mut out = Vec::with_capacity(16 + payload);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (tag, body) in &self.sections {
            out.extend_from_slice(&tag.0);
            out.extend_from_slice(&(body.len() as u64).to_le_bytes());
            out.extend_from_slice(&section_crc(*tag, body).to_le_bytes());
            out.extend_from_slice(body);
        }
        out
    }

    /// Writes the container to `path` atomically: the bytes go to a
    /// temporary file in the same directory, which is then renamed over
    /// the target. A crash (or the `snapshot::torn_write` fail point)
    /// between the two steps leaves any existing snapshot at `path`
    /// untouched.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure,
    /// [`SnapshotError::FaultInjected`] from the armed fail point.
    pub fn write_atomic(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let path = path.as_ref();
        let bytes = self.to_bytes();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        crate::failpoint!("snapshot::torn_write", {
            // Simulated crash mid-write: half the bytes reach the
            // temporary file, the rename never happens, and the target
            // stays whatever it was.
            fs::write(&tmp, &bytes[..bytes.len() / 2])?;
            return Err(SnapshotError::FaultInjected("snapshot::torn_write"));
        });
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, path)?;
        Ok(())
    }
}

/// A parsed, CRC-verified snapshot container.
#[derive(Debug, Clone)]
pub struct Snapshot {
    version: u32,
    sections: Vec<(SectionTag, Vec<u8>)>,
}

impl Snapshot {
    /// Parses and fully validates a container: magic, version, section
    /// framing, per-section CRCs, duplicate tags and trailing bytes.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] decode rejection; on error nothing of the
    /// input is trusted or retained.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut pos = 0usize;
        let take =
            |pos: &mut usize, n: usize, context: &'static str| -> Result<usize, SnapshotError> {
                let start = *pos;
                let end = start
                    .checked_add(n)
                    .ok_or(SnapshotError::Truncated { context })?;
                if end > bytes.len() {
                    return Err(SnapshotError::Truncated { context });
                }
                *pos = end;
                Ok(start)
            };

        let at = take(&mut pos, 8, "magic")?;
        if bytes[at..at + 8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let at = take(&mut pos, 4, "version")?;
        let version = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let at = take(&mut pos, 4, "section count")?;
        let count = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));

        let mut sections: Vec<(SectionTag, Vec<u8>)> = Vec::new();
        for _ in 0..count {
            let at = take(&mut pos, 4, "section tag")?;
            let tag = SectionTag(bytes[at..at + 4].try_into().expect("4 bytes"));
            let at = take(&mut pos, 8, "section length")?;
            let len = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
            let at = take(&mut pos, 4, "section crc")?;
            let crc = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
            let len = usize::try_from(len).map_err(|_| SnapshotError::Truncated {
                context: "section payload",
            })?;
            let at = take(&mut pos, len, "section payload")?;
            let body = &bytes[at..at + len];
            if section_crc(tag, body) != crc {
                return Err(SnapshotError::CrcMismatch { section: tag });
            }
            if sections.iter().any(|(t, _)| *t == tag) {
                return Err(SnapshotError::DuplicateSection { section: tag });
            }
            sections.push((tag, body.to_vec()));
        }
        if pos != bytes.len() {
            return Err(SnapshotError::TrailingBytes {
                extra: bytes.len() - pos,
            });
        }
        Ok(Snapshot { version, sections })
    }

    /// Reads and validates a snapshot file.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure, or any decode
    /// rejection from [`Snapshot::from_bytes`]. The `snapshot::short_read`
    /// and `snapshot::crc_flip` fail points corrupt the in-memory bytes
    /// before validation to prove the rejections fire.
    pub fn read_file(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        #[allow(unused_mut)]
        let mut bytes = fs::read(path.as_ref())?;
        crate::failpoint!("snapshot::short_read", {
            // Simulated short read: the tail of the file never arrives.
            let keep = bytes.len().saturating_sub(7);
            bytes.truncate(keep);
        });
        crate::failpoint!("snapshot::crc_flip", {
            // Simulated media bit rot inside the last section's payload.
            if let Some(last) = bytes.last_mut() {
                *last ^= 0x01;
            }
        });
        Self::from_bytes(&bytes)
    }

    /// The container's format version (currently always
    /// [`FORMAT_VERSION`]).
    #[inline]
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Tags present, in file order.
    pub fn tags(&self) -> impl Iterator<Item = SectionTag> + '_ {
        self.sections.iter().map(|(t, _)| *t)
    }

    /// Opens the section `tag` for reading.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::MissingSection`] when absent.
    pub fn section(&self, tag: SectionTag) -> Result<SectionReader<'_>, SnapshotError> {
        let (_, body) = self
            .sections
            .iter()
            .find(|(t, _)| *t == tag)
            .ok_or(SnapshotError::MissingSection { section: tag })?;
        Ok(SectionReader {
            tag,
            buf: body,
            pos: 0,
        })
    }
}

/// Cursor over one section's payload; every read is bounds-checked and
/// returns [`SnapshotError::Malformed`] instead of panicking.
#[derive(Debug)]
pub struct SectionReader<'a> {
    tag: SectionTag,
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SectionReader<'a> {
    fn malformed(&self, reason: impl Into<String>) -> SnapshotError {
        SnapshotError::Malformed {
            section: self.tag,
            reason: reason.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.malformed("unexpected end of section"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] at end of section.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] at end of section.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] at end of section.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `u64` and converts it to `usize`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] at end of section or on overflow.
    pub fn read_len(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| self.malformed(format!("length {v} overflows usize")))
    }

    /// Reads an `f64` from its IEEE bit pattern.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] at end of section.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] on a length beyond the section or
    /// invalid UTF-8.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.read_len()?;
        if n > self.remaining() {
            return Err(self.malformed("string length beyond section end"));
        }
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.malformed("invalid UTF-8"))
    }

    /// Consumes and returns the rest of the payload (for sections whose
    /// body is an opaque embedded document).
    pub fn rest(&mut self) -> &'a [u8] {
        let out = &self.buf[self.pos..];
        self.pos = self.buf.len();
        out
    }

    /// Reads a length-prefixed `u32` vector. The length is validated
    /// against the bytes actually present before any allocation, so a
    /// corrupt count cannot trigger an absurd reservation.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] on a length beyond the section.
    pub fn vec_u32(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let n = self.read_len()?;
        if n.checked_mul(4).is_none_or(|b| b > self.remaining()) {
            return Err(self.malformed("u32 vector length beyond section end"));
        }
        (0..n).map(|_| self.u32()).collect()
    }

    /// Reads a length-prefixed `f64` vector (bitwise exact), with the
    /// same pre-allocation length validation as
    /// [`vec_u32`](Self::vec_u32).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] on a length beyond the section.
    pub fn vec_f64(&mut self) -> Result<Vec<f64>, SnapshotError> {
        let n = self.read_len()?;
        if n.checked_mul(8).is_none_or(|b| b > self.remaining()) {
            return Err(self.malformed("f64 vector length beyond section end"));
        }
        (0..n).map(|_| self.f64()).collect()
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] when bytes remain.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.pos != self.buf.len() {
            return Err(SnapshotError::Malformed {
                section: self.tag,
                reason: format!(
                    "{} unread byte(s) at section end",
                    self.buf.len() - self.pos
                ),
            });
        }
        Ok(())
    }
}

/// Stable wire code of a [`GateKind`] (independent of enum layout).
pub fn gate_kind_code(kind: GateKind) -> u8 {
    match kind {
        GateKind::Input => 0,
        GateKind::And => 1,
        GateKind::Nand => 2,
        GateKind::Or => 3,
        GateKind::Nor => 4,
        GateKind::Xor => 5,
        GateKind::Xnor => 6,
        GateKind::Not => 7,
        GateKind::Buf => 8,
    }
}

/// Inverse of [`gate_kind_code`]; `None` for unknown codes.
pub fn gate_kind_from_code(code: u8) -> Option<GateKind> {
    Some(match code {
        0 => GateKind::Input,
        1 => GateKind::And,
        2 => GateKind::Nand,
        3 => GateKind::Or,
        4 => GateKind::Nor,
        5 => GateKind::Xor,
        6 => GateKind::Xnor,
        7 => GateKind::Not,
        8 => GateKind::Buf,
        _ => return None,
    })
}

/// Encodes `circuit` as the [`TAG_CIRCUIT`] section of `w`.
pub fn write_circuit_section(w: &mut SnapshotWriter, circuit: &Circuit) {
    w.begin_section(TAG_CIRCUIT);
    w.str(circuit.name());
    w.u64(circuit.node_count() as u64);
    for node in circuit.nodes() {
        w.u8(gate_kind_code(node.kind));
        w.str(&node.name);
        w.u64(node.fanin.len() as u64);
        for &f in &node.fanin {
            w.u32(f.index() as u32);
        }
    }
    let pos: Vec<u32> = circuit
        .primary_outputs()
        .iter()
        .map(|id| id.index() as u32)
        .collect();
    w.vec_u32(&pos);
    w.end_section();
}

/// Decodes the [`TAG_CIRCUIT`] section of `snap`, funnelling through
/// [`Circuit::from_parts`] so every structural invariant is re-checked.
///
/// # Errors
///
/// [`SnapshotError::MissingSection`] or [`SnapshotError::Malformed`]
/// (including any [`NetlistError`](crate::NetlistError) surfaced by the
/// validating constructor).
pub fn read_circuit_section(snap: &Snapshot) -> Result<Circuit, SnapshotError> {
    let mut s = snap.section(TAG_CIRCUIT)?;
    let name = s.str()?;
    let n = s.read_len()?;
    // Each node costs at least kind (1) + name len (8) + fanin len (8).
    if n.checked_mul(17).is_none_or(|b| b > s.remaining()) {
        return Err(SnapshotError::Malformed {
            section: TAG_CIRCUIT,
            reason: "node count beyond section end".into(),
        });
    }
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        let code = s.u8()?;
        let kind = gate_kind_from_code(code).ok_or_else(|| SnapshotError::Malformed {
            section: TAG_CIRCUIT,
            reason: format!("unknown gate kind code {code}"),
        })?;
        let node_name = s.str()?;
        let fanin = s
            .vec_u32()?
            .into_iter()
            .map(|i| NodeId::new(i as usize))
            .collect();
        nodes.push(Node {
            kind,
            fanin,
            name: node_name,
        });
    }
    let primary_outputs: Vec<NodeId> = s
        .vec_u32()?
        .into_iter()
        .map(|i| NodeId::new(i as usize))
        .collect();
    s.finish()?;
    Circuit::from_parts(name, nodes, primary_outputs).map_err(|e| SnapshotError::Malformed {
        section: TAG_CIRCUIT,
        reason: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    const T1: SectionTag = SectionTag(*b"AAAA");
    const T2: SectionTag = SectionTag(*b"BBBB");

    fn two_section_bytes() -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.begin_section(T1);
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(1 << 40);
        w.f64(-0.0);
        w.str("π section");
        w.vec_u32(&[1, 2, 3]);
        w.vec_f64(&[f64::NAN, 1.5]);
        w.end_section();
        w.begin_section(T2);
        w.bytes(b"opaque");
        w.end_section();
        w.to_bytes()
    }

    #[test]
    fn primitives_round_trip_bitwise() {
        let bytes = two_section_bytes();
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap.version(), FORMAT_VERSION);
        let mut s = snap.section(T1).unwrap();
        assert_eq!(s.u8().unwrap(), 7);
        assert_eq!(s.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(s.u64().unwrap(), 1 << 40);
        assert_eq!(s.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(s.str().unwrap(), "π section");
        assert_eq!(s.vec_u32().unwrap(), vec![1, 2, 3]);
        let v = s.vec_f64().unwrap();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].to_bits(), f64::NAN.to_bits());
        assert_eq!(v[1], 1.5);
        s.finish().unwrap();
        let mut s2 = snap.section(T2).unwrap();
        assert_eq!(s2.rest(), b"opaque");
        s2.finish().unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = two_section_bytes();
        bytes[0] ^= 0x40;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn version_skew_is_rejected() {
        let mut bytes = two_section_bytes();
        bytes[8] = 0xFE;
        let err = Snapshot::from_bytes(&bytes).unwrap_err();
        assert!(
            matches!(err, SnapshotError::UnsupportedVersion { found, supported }
                if found != FORMAT_VERSION && supported == FORMAT_VERSION),
            "{err}"
        );
    }

    #[test]
    fn every_truncation_point_is_rejected() {
        let bytes = two_section_bytes();
        for cut in 0..bytes.len() {
            let err = Snapshot::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::BadMagic
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn payload_bit_flips_fail_crc() {
        let bytes = two_section_bytes();
        // Flip one bit in every payload byte position; each must be
        // caught by a CRC (payload) or framing (header) rejection.
        for i in 16..bytes.len() {
            for bit in [0x01u8, 0x80u8] {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= bit;
                assert!(
                    Snapshot::from_bytes(&corrupt).is_err(),
                    "flip at byte {i} bit {bit:#x} accepted"
                );
            }
        }
    }

    #[test]
    fn duplicate_sections_are_rejected() {
        let mut w = SnapshotWriter::new();
        w.begin_section(T1);
        w.u8(1);
        w.end_section();
        w.begin_section(T1);
        w.u8(2);
        w.end_section();
        let err = Snapshot::from_bytes(&w.to_bytes()).unwrap_err();
        assert!(
            matches!(err, SnapshotError::DuplicateSection { section } if section == T1),
            "{err}"
        );
    }

    #[test]
    fn missing_section_and_trailing_bytes_are_rejected() {
        let bytes = two_section_bytes();
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        let missing = SectionTag(*b"ZZZZ");
        assert!(matches!(
            snap.section(missing),
            Err(SnapshotError::MissingSection { section }) if section == missing
        ));
        let mut padded = bytes;
        padded.push(0);
        assert!(matches!(
            Snapshot::from_bytes(&padded),
            Err(SnapshotError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn oversized_inner_lengths_are_rejected_without_allocation() {
        let mut w = SnapshotWriter::new();
        w.begin_section(T1);
        w.u64(u64::MAX); // an absurd vector count
        w.end_section();
        let snap = Snapshot::from_bytes(&w.to_bytes()).unwrap();
        let mut s = snap.section(T1).unwrap();
        assert!(matches!(s.vec_f64(), Err(SnapshotError::Malformed { .. })));
        let mut s = snap.section(T1).unwrap();
        assert!(matches!(s.vec_u32(), Err(SnapshotError::Malformed { .. })));
        let mut s = snap.section(T1).unwrap();
        assert!(matches!(s.str(), Err(SnapshotError::Malformed { .. })));
    }

    #[test]
    fn unread_bytes_fail_finish() {
        let bytes = two_section_bytes();
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        let s = snap.section(T1).unwrap();
        assert!(matches!(s.finish(), Err(SnapshotError::Malformed { .. })));
    }

    #[test]
    fn atomic_write_then_read_round_trips() {
        let dir = std::env::temp_dir().join("sersnap_test_rw");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.sersnap");
        let mut w = SnapshotWriter::new();
        write_circuit_section(&mut w, &generate::c17());
        w.write_atomic(&path).unwrap();
        let snap = Snapshot::read_file(&path).unwrap();
        let back = read_circuit_section(&snap).unwrap();
        assert_eq!(back, generate::c17());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn circuit_codec_round_trips_structures() {
        for circuit in [generate::c17(), generate::sec32("t")] {
            let mut w = SnapshotWriter::new();
            write_circuit_section(&mut w, &circuit);
            let snap = Snapshot::from_bytes(&w.to_bytes()).unwrap();
            let back = read_circuit_section(&snap).unwrap();
            assert_eq!(back, circuit);
        }
    }

    #[test]
    fn circuit_decoder_revalidates_structure() {
        // A structurally broken circuit (dangling fan-in) must be caught
        // by the from_parts funnel, not accepted.
        let mut w = SnapshotWriter::new();
        w.begin_section(TAG_CIRCUIT);
        w.str("broken");
        w.u64(1);
        w.u8(gate_kind_code(GateKind::Not));
        w.str("g");
        w.u64(1);
        w.u32(5); // fan-in id out of range
        w.vec_u32(&[0]);
        w.end_section();
        let snap = Snapshot::from_bytes(&w.to_bytes()).unwrap();
        let err = read_circuit_section(&snap).unwrap_err();
        assert!(matches!(err, SnapshotError::Malformed { .. }), "{err}");
    }

    #[test]
    fn gate_kind_codes_round_trip() {
        let mut all = vec![GateKind::Input];
        all.extend(GateKind::GATES);
        for kind in all {
            assert_eq!(gate_kind_from_code(gate_kind_code(kind)), Some(kind));
        }
        assert_eq!(gate_kind_from_code(9), None);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
