//! PI→PO path counting and enumeration.
//!
//! SERTOPT's topology matrix `T` has one row per PI→PO path; for realistic
//! circuits the path count is astronomically large, which is why the crate
//! offers both exact enumeration (for small circuits and tests) and
//! counting (always cheap, `O(V + E)` with big-float accumulators).

use crate::circuit::Circuit;
use crate::id::NodeId;

/// Number of PI→PO paths **through** every node, as `f64` (exact until
/// 2^53, then a faithful approximation — ISCAS'85 counts fit comfortably
/// in `f64` range).
///
/// `paths_through[i] = paths_from_pi_to(i) × paths_from(i)_to_po`.
pub fn paths_through(circuit: &Circuit) -> Vec<f64> {
    let from_pi = paths_from_inputs(circuit);
    let to_po = paths_to_outputs(circuit);
    from_pi.iter().zip(&to_po).map(|(&a, &b)| a * b).collect()
}

/// Number of paths from any primary input to each node (a PI counts 1 for
/// itself).
pub fn paths_from_inputs(circuit: &Circuit) -> Vec<f64> {
    let mut count = vec![0.0f64; circuit.node_count()];
    for &id in circuit.topological_order() {
        let node = circuit.node(id);
        count[id.index()] = if node.is_input() {
            1.0
        } else {
            node.fanin.iter().map(|f| count[f.index()]).sum()
        };
    }
    count
}

/// Number of paths from each node to any primary output (a PO counts 1 for
/// itself, *plus* any paths continuing through its fan-out).
pub fn paths_to_outputs(circuit: &Circuit) -> Vec<f64> {
    let mut count = vec![0.0f64; circuit.node_count()];
    for &id in circuit.topological_order().iter().rev() {
        let mut c = if circuit.is_primary_output(id) {
            1.0
        } else {
            0.0
        };
        // `fanout` lists one entry per pin, so each entry is one path unit.
        for &s in circuit.fanout(id) {
            c += count[s.index()];
        }
        count[id.index()] = c;
    }
    count
}

/// Total number of PI→PO paths in the circuit.
pub fn total_paths(circuit: &Circuit) -> f64 {
    let to_po = paths_to_outputs(circuit);
    circuit
        .primary_inputs()
        .iter()
        .map(|pi| to_po[pi.index()])
        .sum()
}

/// One complete PI→PO path: the node sequence, inputs first.
pub type Path = Vec<NodeId>;

/// Enumerates every PI→PO path, aborting with `None` once more than
/// `limit` paths exist. Paths are produced in DFS order, deterministic for
/// a given circuit.
///
/// # Example
///
/// ```
/// use ser_netlist::{generate, paths};
///
/// let c17 = generate::c17();
/// let all = paths::enumerate(&c17, 1_000).expect("c17 is tiny");
/// assert_eq!(all.len() as f64, paths::total_paths(&c17));
/// ```
pub fn enumerate(circuit: &Circuit, limit: usize) -> Option<Vec<Path>> {
    let mut result = Vec::new();
    let mut stack: Path = Vec::new();
    for &pi in circuit.primary_inputs() {
        stack.push(pi);
        if !dfs(circuit, pi, &mut stack, &mut result, limit) {
            return None;
        }
        stack.pop();
    }
    Some(result)
}

fn dfs(
    circuit: &Circuit,
    at: NodeId,
    stack: &mut Path,
    result: &mut Vec<Path>,
    limit: usize,
) -> bool {
    if circuit.is_primary_output(at) {
        if result.len() >= limit {
            return false;
        }
        result.push(stack.clone());
        // POs that keep driving logic continue below.
    }
    // `fanout` lists one entry per pin, giving one path per pin.
    for &s in circuit.fanout(at) {
        stack.push(s);
        if !dfs(circuit, s, stack, result, limit) {
            return false;
        }
        stack.pop();
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::gate::GateKind;
    use crate::generate;

    #[test]
    fn c17_has_eleven_paths() {
        // Known structural fact about c17.
        let c = generate::c17();
        assert_eq!(total_paths(&c), 11.0);
        assert_eq!(enumerate(&c, 100).unwrap().len(), 11);
    }

    #[test]
    fn enumeration_matches_count_on_diamond() {
        let mut b = CircuitBuilder::new("diamond");
        let a = b.input("a");
        let p = b.gate(GateKind::Not, "p", &[a]).unwrap();
        let q = b.gate(GateKind::Buf, "q", &[a]).unwrap();
        let y = b.gate(GateKind::And, "y", &[p, q]).unwrap();
        b.mark_output(y);
        let c = b.finish().unwrap();
        assert_eq!(total_paths(&c), 2.0);
        let paths = enumerate(&c, 10).unwrap();
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.first(), Some(&a));
            assert_eq!(p.last(), Some(&y));
        }
    }

    #[test]
    fn limit_aborts() {
        let c = generate::c17();
        assert!(enumerate(&c, 3).is_none());
    }

    #[test]
    fn paths_through_consistency() {
        let c = generate::c17();
        let through = paths_through(&c);
        // Paths through any PO equal paths ending there… POs in c17 don't
        // feed logic, so paths_through = paths_from_inputs at POs.
        let from_pi = paths_from_inputs(&c);
        for &po in c.primary_outputs() {
            assert_eq!(through[po.index()], from_pi[po.index()]);
        }
        // Sum over POs = total paths.
        let sum: f64 = c
            .primary_outputs()
            .iter()
            .map(|po| through[po.index()])
            .sum();
        assert_eq!(sum, total_paths(&c));
    }

    #[test]
    fn po_feeding_logic_counts_both() {
        let mut b = CircuitBuilder::new("po_feed");
        let a = b.input("a");
        let g = b.gate(GateKind::Not, "g", &[a]).unwrap();
        let h = b.gate(GateKind::Not, "h", &[g]).unwrap();
        b.mark_output(g);
        b.mark_output(h);
        let c = b.finish().unwrap();
        // Paths: a->g and a->g->h.
        assert_eq!(total_paths(&c), 2.0);
        let paths = enumerate(&c, 10).unwrap();
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn multi_pin_edges_count_per_pin() {
        // y = AND(x, x): two pins from the same net → two paths.
        let mut b = CircuitBuilder::new("multipin");
        let a = b.input("a");
        let y = b.gate(GateKind::And, "y", &[a, a]).unwrap();
        b.mark_output(y);
        let c = b.finish().unwrap();
        assert_eq!(total_paths(&c), 2.0);
        assert_eq!(enumerate(&c, 10).unwrap().len(), 2);
    }
}
