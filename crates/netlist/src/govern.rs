//! Cooperative execution governance: wall-clock deadlines, cancellation
//! tokens and degradation events.
//!
//! Long-running kernels (the Monte-Carlo P_ij estimator, the incremental
//! session recompute, the SERTOPT optimizer loops) periodically call
//! [`Deadline::check`] at points where their state is consistent. When
//! the budget is exhausted — the wall clock passed the deadline, or a
//! [`CancelToken`] shared with another thread was cancelled — the check
//! returns a typed [`Interrupted`] carrying the checkpoint's stage name,
//! and the caller unwinds with its last consistent partial result
//! instead of being killed mid-mutation.
//!
//! [`DegradationEvent`] is the companion channel for *memory* pressure:
//! instead of aborting, a kernel under a soft byte budget shrinks its
//! working set and records what it gave up, so the report can surface
//! the degradation to the operator.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use ser_netlist::govern::{CancelToken, Deadline, InterruptReason};
//!
//! // An unbounded deadline never interrupts.
//! assert!(Deadline::none().check("stage").is_ok());
//!
//! // A cancelled token interrupts at the next checkpoint.
//! let token = CancelToken::new();
//! let deadline = Deadline::none().with_token(token.clone());
//! assert!(deadline.check("stage").is_ok());
//! token.cancel();
//! let err = deadline.check("stage").unwrap_err();
//! assert_eq!(err.stage, "stage");
//! assert_eq!(err.reason, InterruptReason::Cancelled);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared flag for cooperative cancellation across threads.
///
/// Cloning shares the flag: any clone's [`CancelToken::cancel`] is seen
/// by every [`Deadline`] holding another clone.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; every checkpoint observing this token
    /// interrupts from now on. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A cooperative execution budget: an optional wall-clock deadline plus
/// an optional [`CancelToken`].
///
/// `Deadline` is cheap to clone and check; kernels test it at stage or
/// block boundaries where their partial state is consistent.
#[derive(Debug, Clone, Default)]
pub struct Deadline {
    at: Option<Instant>,
    token: Option<CancelToken>,
}

impl Deadline {
    /// An unbounded budget: [`Deadline::check`] always succeeds.
    pub fn none() -> Self {
        Self::default()
    }

    /// A budget expiring `limit` from now.
    pub fn within(limit: Duration) -> Self {
        Deadline {
            at: Instant::now().checked_add(limit),
            token: None,
        }
    }

    /// A budget expiring at `instant`.
    pub fn at(instant: Instant) -> Self {
        Deadline {
            at: Some(instant),
            token: None,
        }
    }

    /// Attaches a cancellation token (keeping any wall-clock limit).
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.token = Some(token);
        self
    }

    /// Whether this budget can ever interrupt.
    #[inline]
    pub fn is_unbounded(&self) -> bool {
        self.at.is_none() && self.token.is_none()
    }

    /// Whether the wall-clock deadline has passed (ignores the token).
    #[inline]
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }

    /// Checkpoint: returns `Err(Interrupted)` naming `stage` when the
    /// budget is exhausted, in priority order cancellation before
    /// deadline. Callers invoke this only where their partial state is
    /// consistent, so an interruption never leaves torn results.
    pub fn check(&self, stage: &'static str) -> Result<(), Interrupted> {
        // Deterministic injection point for deadline-at-every-stage
        // fault-injection runs (see `tests/fault_injection.rs`).
        crate::failpoint!(
            "govern::deadline",
            return Err(Interrupted {
                stage,
                reason: InterruptReason::Injected,
            })
        );
        if self.token.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Err(Interrupted {
                stage,
                reason: InterruptReason::Cancelled,
            });
        }
        if self.expired() {
            return Err(Interrupted {
                stage,
                reason: InterruptReason::DeadlineExpired,
            });
        }
        Ok(())
    }
}

/// Why a checkpoint interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum InterruptReason {
    /// The wall-clock deadline passed.
    DeadlineExpired,
    /// A [`CancelToken`] was cancelled.
    Cancelled,
    /// A fault-injection hook forced the interruption (`fail-points`
    /// builds only).
    Injected,
}

/// Typed interruption: the budget ran out at the named checkpoint.
///
/// Carriers of this error guarantee the partial state they return
/// alongside (or retain) is consistent — optimizers report their
/// best-so-far assignment, the estimator reports the samples it
/// completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupted {
    /// The checkpoint that observed the exhausted budget.
    pub stage: &'static str,
    /// What exhausted it.
    pub reason: InterruptReason,
}

impl fmt::Display for Interrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let why = match self.reason {
            InterruptReason::DeadlineExpired => "wall-clock deadline expired",
            InterruptReason::Cancelled => "cancelled",
            InterruptReason::Injected => "injected interruption",
        };
        write!(f, "interrupted at `{}`: {why}", self.stage)
    }
}

impl std::error::Error for Interrupted {}

/// A graceful-degradation event recorded by a kernel running under a
/// soft memory budget: the run completed, but with a reduced working
/// set. Surfaced on analysis reports so shrunken accuracy/performance
/// envelopes are visible, never silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DegradationEvent {
    /// The cone-arena chunk size was shrunk to fit the soft budget.
    ChunkShrunk {
        /// Planned chunk size before shrinking (roots per chunk).
        from: usize,
        /// Chunk size actually used.
        to: usize,
        /// The soft budget that forced the shrink, in bytes.
        limit_bytes: usize,
    },
    /// Resident cone chunks were evicted (LRU) to respect the budget.
    ConesShed {
        /// Number of chunk evictions over the run.
        evictions: usize,
    },
    /// A Monte-Carlo estimate stopped early at a consistent block
    /// boundary because the execution budget ran out; the result is
    /// valid but averages fewer samples than requested.
    EstimateTruncated {
        /// Random vectors actually folded into the estimate.
        completed: usize,
        /// Random vectors the caller asked for.
        requested: usize,
    },
}

impl fmt::Display for DegradationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradationEvent::ChunkShrunk {
                from,
                to,
                limit_bytes,
            } => write!(
                f,
                "cone chunk size shrunk {from} -> {to} to fit soft memory budget of {limit_bytes} B"
            ),
            DegradationEvent::ConesShed { evictions } => {
                write!(
                    f,
                    "{evictions} resident cone chunk(s) evicted under memory budget"
                )
            }
            DegradationEvent::EstimateTruncated {
                completed,
                requested,
            } => write!(
                f,
                "estimate truncated at {completed}/{requested} vectors by the execution budget"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_interrupts() {
        let d = Deadline::none();
        assert!(d.is_unbounded());
        assert!(!d.expired());
        for _ in 0..3 {
            assert!(d.check("anywhere").is_ok());
        }
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Deadline::within(Duration::ZERO);
        assert!(!d.is_unbounded());
        assert!(d.expired());
        let err = d.check("estimate").unwrap_err();
        assert_eq!(err.stage, "estimate");
        assert_eq!(err.reason, InterruptReason::DeadlineExpired);
    }

    #[test]
    fn generous_budget_passes() {
        let d = Deadline::within(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.check("estimate").is_ok());
    }

    #[test]
    fn token_cancellation_is_shared_and_wins() {
        let token = CancelToken::new();
        // Expired deadline AND cancelled token: cancellation reported.
        let d = Deadline::within(Duration::ZERO).with_token(token.clone());
        let other_clone = token.clone();
        other_clone.cancel();
        assert!(token.is_cancelled());
        let err = d.check("opt").unwrap_err();
        assert_eq!(err.reason, InterruptReason::Cancelled);
    }

    #[test]
    fn display_is_informative() {
        let e = Interrupted {
            stage: "sensitize::block",
            reason: InterruptReason::DeadlineExpired,
        };
        let msg = e.to_string();
        assert!(msg.contains("sensitize::block"), "{msg}");
        assert!(msg.contains("deadline"), "{msg}");

        let shrunk = DegradationEvent::ChunkShrunk {
            from: 128,
            to: 32,
            limit_bytes: 1 << 20,
        };
        assert!(shrunk.to_string().contains("128 -> 32"));
        let shed = DegradationEvent::ConesShed { evictions: 4 };
        assert!(shed.to_string().contains("4"));
    }

    #[test]
    fn deadline_at_instant() {
        let d = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(d.expired());
        let d = Deadline::at(Instant::now() + Duration::from_secs(60));
        assert!(!d.expired());
    }
}
