use std::fmt;

use crate::gate::GateKind;
use crate::id::NodeId;

/// Structural error produced while building or validating a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// Two nodes carry the same net name.
    DuplicateName {
        /// The offending name.
        name: String,
        /// First node with the name.
        first: NodeId,
        /// Second node with the name.
        second: NodeId,
    },
    /// A gate has a fan-in count its kind does not allow.
    BadArity {
        /// The offending node.
        node: NodeId,
        /// Its kind.
        kind: GateKind,
        /// The fan-in count it was given.
        fanin: usize,
    },
    /// A fan-in id does not refer to any node.
    DanglingFanin {
        /// The node with the bad pin.
        node: NodeId,
        /// The nonexistent id.
        missing: NodeId,
    },
    /// A primary-output id does not refer to any node.
    DanglingOutput {
        /// The nonexistent id.
        missing: NodeId,
    },
    /// The same node is marked as a primary output twice.
    DuplicateOutput {
        /// The node marked twice.
        output: NodeId,
    },
    /// No primary output was marked.
    NoOutputs,
    /// The netlist graph contains a cycle.
    Cycle {
        /// A node on (or blocked by) the cycle.
        witness: NodeId,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName {
                name,
                first,
                second,
            } => write!(
                f,
                "duplicate net name `{name}` on nodes {first} and {second}"
            ),
            NetlistError::BadArity { node, kind, fanin } => {
                write!(
                    f,
                    "node {node}: gate kind {kind} cannot take {fanin} fan-ins"
                )
            }
            NetlistError::DanglingFanin { node, missing } => {
                write!(f, "node {node} references nonexistent fan-in {missing}")
            }
            NetlistError::DanglingOutput { missing } => {
                write!(f, "primary output references nonexistent node {missing}")
            }
            NetlistError::DuplicateOutput { output } => {
                write!(f, "node {output} marked as primary output more than once")
            }
            NetlistError::NoOutputs => write!(f, "circuit has no primary outputs"),
            NetlistError::Cycle { witness } => {
                write!(f, "combinational cycle detected (witness node {witness})")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// Error produced while parsing an ISCAS'85 `.bench` file.
///
/// Every lexical variant carries the 1-based line number and 1-based
/// byte column of the offending token, so malformed inputs are
/// pinpointed exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseBenchError {
    /// A line could not be parsed at all.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// 1-based byte column where the unparseable text starts.
        column: usize,
        /// The offending text.
        text: String,
    },
    /// A gate definition names an unknown gate kind.
    UnknownGate {
        /// 1-based line number.
        line: usize,
        /// 1-based byte column of the kind token.
        column: usize,
        /// The unrecognized kind token.
        kind: String,
    },
    /// A signal is referenced but never defined.
    UndefinedSignal {
        /// 1-based line number of the reference.
        line: usize,
        /// 1-based byte column of the reference.
        column: usize,
        /// The undefined signal name.
        name: String,
    },
    /// A signal is defined (driven) more than once.
    Redefined {
        /// 1-based line number of the second definition.
        line: usize,
        /// 1-based byte column of the redefined signal token.
        column: usize,
        /// The redefined signal name.
        name: String,
    },
    /// The netlist parsed but failed structural validation.
    Structure(NetlistError),
}

impl fmt::Display for ParseBenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBenchError::Syntax { line, column, text } => {
                write!(f, "line {line}:{column}: cannot parse `{text}`")
            }
            ParseBenchError::UnknownGate { line, column, kind } => {
                write!(f, "line {line}:{column}: unknown gate kind `{kind}`")
            }
            ParseBenchError::UndefinedSignal { line, column, name } => {
                write!(
                    f,
                    "line {line}:{column}: signal `{name}` referenced but never defined"
                )
            }
            ParseBenchError::Redefined { line, column, name } => {
                write!(
                    f,
                    "line {line}:{column}: signal `{name}` driven more than once"
                )
            }
            ParseBenchError::Structure(e) => write!(f, "invalid netlist structure: {e}"),
        }
    }
}

impl std::error::Error for ParseBenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseBenchError::Structure(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for ParseBenchError {
    fn from(e: NetlistError) -> Self {
        ParseBenchError::Structure(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = NetlistError::NoOutputs;
        let s = e.to_string();
        assert!(s.starts_with(char::is_lowercase));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn parse_error_wraps_structure() {
        let inner = NetlistError::NoOutputs;
        let outer: ParseBenchError = inner.clone().into();
        assert!(outer.to_string().contains("no primary outputs"));
        use std::error::Error;
        assert!(outer.source().is_some());
    }
}
