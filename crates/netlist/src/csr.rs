//! Flat CSR (compressed-sparse-row) views of a [`Circuit`] for hot-path
//! kernels.
//!
//! The pointer-rich [`Circuit`] representation (one heap `Vec` of fan-ins
//! and a `String` name per node) is convenient to build and query but
//! hostile to tight simulation loops: every gate evaluation chases two
//! pointers and the nodes it touches are scattered across the heap.
//! [`CsrView`] flattens the structure the kernels actually need — gate
//! kinds, fan-in/fan-out adjacency and the topological order — into a
//! handful of contiguous `u32` arrays, and [`ConeArena`] materializes
//! fan-out cones (plus their reachable-primary-output column lists) into
//! one shared arena so per-strike resimulation touches exactly the nodes
//! that can change. For circuits too large to hold the whole cone
//! closure, [`ChunkedConeArena`] plans a PO-region partition of the
//! roots and builds each chunk's arena lazily on first touch, bounding
//! peak memory to the active chunk plus an `O(nodes)` index.
//!
//! # Example
//!
//! ```
//! use ser_netlist::csr::{ConeArena, CsrView};
//! use ser_netlist::generate;
//!
//! let c17 = generate::c17();
//! let csr = CsrView::build(&c17);
//! let arena = ConeArena::build(&csr);
//! let g10 = c17.find("10").unwrap();
//! // The cone is topologically sorted and starts at its root.
//! assert_eq!(arena.cone(g10.index())[0], g10.index() as u32);
//! // Gate 10 reaches only the first primary output (net 22).
//! assert_eq!(arena.reachable_cols(g10.index()), &[0]);
//! ```

use crate::circuit::Circuit;
use crate::gate::GateKind;

/// Sentinel marking "not a primary output" in [`CsrView::po_col_of`].
pub const NO_PO: u32 = u32::MAX;

/// A flat, cache-friendly view of a circuit's structure.
///
/// All node references are dense `u32` indices (the same indices as
/// [`NodeId::index`](crate::NodeId::index)); adjacency is stored as
/// offset + index arrays in the classic CSR layout.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrView {
    kinds: Vec<GateKind>,
    fanin_off: Vec<u32>,
    fanin: Vec<u32>,
    fanout_off: Vec<u32>,
    fanout: Vec<u32>,
    topo: Vec<u32>,
    rank: Vec<u32>,
    inputs: Vec<u32>,
    outputs: Vec<u32>,
    po_col: Vec<u32>,
}

impl CsrView {
    /// Flattens `circuit` into CSR arrays. `O(V + E)`.
    pub fn build(circuit: &Circuit) -> Self {
        let n = circuit.node_count();
        let mut kinds = Vec::with_capacity(n);
        let mut fanin_off = Vec::with_capacity(n + 1);
        let mut fanin = Vec::with_capacity(circuit.edge_count());
        fanin_off.push(0);
        for node in circuit.nodes() {
            kinds.push(node.kind);
            fanin.extend(node.fanin.iter().map(|f| f.index() as u32));
            fanin_off.push(fanin.len() as u32);
        }

        let mut fanout_off = Vec::with_capacity(n + 1);
        let mut fanout = Vec::with_capacity(fanin.len());
        fanout_off.push(0);
        for i in 0..n {
            fanout.extend(
                circuit
                    .fanout(crate::NodeId::new(i))
                    .iter()
                    .map(|s| s.index() as u32),
            );
            fanout_off.push(fanout.len() as u32);
        }

        let topo: Vec<u32> = circuit
            .topological_order()
            .iter()
            .map(|id| id.index() as u32)
            .collect();
        let mut rank = vec![0u32; n];
        for (r, &i) in topo.iter().enumerate() {
            rank[i as usize] = r as u32;
        }

        let inputs: Vec<u32> = circuit
            .primary_inputs()
            .iter()
            .map(|id| id.index() as u32)
            .collect();
        let outputs: Vec<u32> = circuit
            .primary_outputs()
            .iter()
            .map(|id| id.index() as u32)
            .collect();
        let mut po_col = vec![NO_PO; n];
        for (j, &po) in outputs.iter().enumerate() {
            po_col[po as usize] = j as u32;
        }

        CsrView {
            kinds,
            fanin_off,
            fanin,
            fanout_off,
            fanout,
            topo,
            rank,
            inputs,
            outputs,
            po_col,
        }
    }

    /// Total node count.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Gate kind of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn kind(&self, i: usize) -> GateKind {
        self.kinds[i]
    }

    /// Fan-in node indices of node `i`, in pin order.
    #[inline]
    pub fn fanin_of(&self, i: usize) -> &[u32] {
        &self.fanin[self.fanin_off[i] as usize..self.fanin_off[i + 1] as usize]
    }

    /// Fan-out node indices of node `i` (one entry per pin fed).
    #[inline]
    pub fn fanout_of(&self, i: usize) -> &[u32] {
        &self.fanout[self.fanout_off[i] as usize..self.fanout_off[i + 1] as usize]
    }

    /// The topological order as one flat slice of node indices.
    #[inline]
    pub fn topo(&self) -> &[u32] {
        &self.topo
    }

    /// Topological rank of node `i` (its position in [`CsrView::topo`]).
    #[inline]
    pub fn rank_of(&self, i: usize) -> u32 {
        self.rank[i]
    }

    /// Primary-input node indices, in declaration order.
    #[inline]
    pub fn inputs(&self) -> &[u32] {
        &self.inputs
    }

    /// Primary-output node indices, in declaration order (defining the PO
    /// column space).
    #[inline]
    pub fn outputs(&self) -> &[u32] {
        &self.outputs
    }

    /// PO column of node `i`, or [`NO_PO`] if it is not a primary output.
    #[inline]
    pub fn po_col_of(&self, i: usize) -> u32 {
        self.po_col[i]
    }
}

/// Every node's fan-out cone and reachable-PO column list, packed into one
/// CSR arena.
///
/// Cones are inclusive (the root is the first entry) and topologically
/// sorted, so a strike simulation can force the root and sweep the tail.
/// Reachable-PO lists hold *column indices* into [`CsrView::outputs`], in
/// ascending order. Building the arena is sparsity-aware: each cone costs
/// `O(|cone| · log |cone|)` (a sparse DFS plus a rank sort), not a full
/// `O(V)` pass per node.
#[derive(Debug, Clone, PartialEq)]
pub struct ConeArena {
    cone_off: Vec<usize>,
    cones: Vec<u32>,
    po_off: Vec<usize>,
    po_cols: Vec<u32>,
}

impl ConeArena {
    /// Materializes all cones of `csr` into one arena, in node order —
    /// slot `i` is node `i`'s cone, so slot and node index coincide.
    pub fn build(csr: &CsrView) -> Self {
        let all: Vec<u32> = (0..csr.node_count() as u32).collect();
        Self::build_for(csr, &all)
    }

    /// Materializes the cones of `roots` only, **slot-indexed**: slot `t`
    /// of the arena holds the cone and reachable-PO list of `roots[t]`.
    /// Selective re-simulation uses this to pay for exactly the cones it
    /// replays instead of the whole circuit.
    ///
    /// The builder deduplicates shared sub-cones across roots: requested
    /// roots are processed in descending topological rank, and a root
    /// whose fan-out successors are all already built assembles its cone
    /// by merging theirs (a rank-ordered k-way merge, or a straight
    /// prepend-copy for single-fan-out nodes) instead of re-traversing
    /// the shared fan-out graph. Roots with unbuilt successors fall back
    /// to a sparse DFS that still splices in any finished cone it
    /// reaches. The produced arena is bitwise identical to the one the
    /// naive per-root DFS builds.
    pub fn build_for(csr: &CsrView, roots: &[u32]) -> Self {
        Self::build_for_with_stats(csr, roots).0
    }

    /// [`ConeArena::build_for`] plus [`ConeBuildStats`] describing how
    /// much traversal the deduplicating builder actually performed.
    pub fn build_for_with_stats(csr: &CsrView, roots: &[u32]) -> (Self, ConeBuildStats) {
        const NONE: u32 = u32::MAX;
        let n = csr.node_count();
        let mut stats = ConeBuildStats::default();

        // Build in descending topological rank so every requested root
        // downstream of another is finished before its predecessors ask
        // for it. `tmp` holds cones in processing order; the request
        // (slot) order is restored by the assembly pass below.
        let mut order: Vec<u32> = (0..roots.len() as u32).collect();
        order.sort_unstable_by_key(|&t| std::cmp::Reverse(csr.rank_of(roots[t as usize] as usize)));

        let mut memo = vec![NONE; n]; // node -> finished tmp-cone index
        let mut tmp_of_slot = vec![0u32; roots.len()];
        let mut tmp_off: Vec<usize> = Vec::with_capacity(roots.len() + 1);
        tmp_off.push(0);
        let mut tmp: Vec<u32> = Vec::new();

        // DFS fallback state: stamp[v] == cone index marks v as reached,
        // so the array never needs clearing between roots.
        let mut stamp = vec![NONE; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut heads: Vec<(usize, usize)> = Vec::new();

        for &t in &order {
            let root = roots[t as usize];
            if memo[root as usize] != NONE {
                // Duplicate root in the request: alias the finished cone.
                tmp_of_slot[t as usize] = memo[root as usize];
                continue;
            }
            let idx = (tmp_off.len() - 1) as u32;
            let start = tmp.len();
            let fanout = csr.fanout_of(root as usize);
            let all_built = !fanout.is_empty() && fanout.iter().all(|&s| memo[s as usize] != NONE);
            if fanout.is_empty() {
                tmp.push(root);
            } else if all_built && fanout.len() == 1 {
                // rank(root) precedes every entry of the successor cone,
                // so a straight prepend-copy stays rank-sorted.
                let m = memo[fanout[0] as usize] as usize;
                let (s, e) = (tmp_off[m], tmp_off[m + 1]);
                tmp.push(root);
                tmp.extend_from_within(s..e);
                stats.spliced_entries += e - s;
                stats.merged_roots += 1;
            } else if all_built {
                // Rank-ordered k-way merge of the successor cones. Ranks
                // are a permutation, so equal heads mean the same node;
                // advancing every list whose head matches deduplicates.
                heads.clear();
                for &s in fanout {
                    let m = memo[s as usize] as usize;
                    heads.push((tmp_off[m], tmp_off[m + 1]));
                    stats.spliced_entries += tmp_off[m + 1] - tmp_off[m];
                }
                tmp.push(root);
                loop {
                    let mut best: Option<(u32, u32)> = None;
                    for &(p, e) in &heads {
                        if p < e {
                            let v = tmp[p];
                            let r = csr.rank_of(v as usize);
                            if best.is_none_or(|(br, _)| r < br) {
                                best = Some((r, v));
                            }
                        }
                    }
                    let Some((_, v)) = best else { break };
                    tmp.push(v);
                    for h in heads.iter_mut() {
                        if h.0 < h.1 && tmp[h.0] == v {
                            h.0 += 1;
                        }
                    }
                }
                stats.merged_roots += 1;
            } else {
                // Sparse DFS, splicing in any finished cone it reaches.
                stats.dfs_roots += 1;
                stamp[root as usize] = idx;
                tmp.push(root);
                stack.push(root);
                while let Some(u) = stack.pop() {
                    for &v in csr.fanout_of(u as usize) {
                        stats.dfs_edges += 1;
                        if stamp[v as usize] == idx {
                            continue;
                        }
                        let m = memo[v as usize];
                        if m != NONE {
                            let (s, e) = (tmp_off[m as usize], tmp_off[m as usize + 1]);
                            for p in s..e {
                                let w = tmp[p];
                                if stamp[w as usize] != idx {
                                    stamp[w as usize] = idx;
                                    tmp.push(w);
                                }
                            }
                            stats.spliced_entries += e - s;
                        } else {
                            stamp[v as usize] = idx;
                            tmp.push(v);
                            stack.push(v);
                        }
                    }
                }
                tmp[start..].sort_unstable_by_key(|&v| csr.rank_of(v as usize));
            }
            tmp_off.push(tmp.len());
            memo[root as usize] = idx;
            tmp_of_slot[t as usize] = idx;
        }

        // Assemble in request (slot) order.
        let total: usize = tmp_of_slot
            .iter()
            .map(|&m| tmp_off[m as usize + 1] - tmp_off[m as usize])
            .sum();
        let mut cone_off = Vec::with_capacity(roots.len() + 1);
        let mut po_off = Vec::with_capacity(roots.len() + 1);
        let mut cones: Vec<u32> = Vec::with_capacity(total);
        let mut po_cols: Vec<u32> = Vec::new();
        cone_off.push(0);
        po_off.push(0);
        for &m in &tmp_of_slot {
            let (s, e) = (tmp_off[m as usize], tmp_off[m as usize + 1]);
            cones.extend_from_slice(&tmp[s..e]);
            let ps = *po_off.last().expect("offsets start populated");
            for &v in &tmp[s..e] {
                let col = csr.po_col_of(v as usize);
                if col != NO_PO {
                    po_cols.push(col);
                }
            }
            po_cols[ps..].sort_unstable();
            cone_off.push(cones.len());
            po_off.push(po_cols.len());
        }

        (
            ConeArena {
                cone_off,
                cones,
                po_off,
                po_cols,
            },
            stats,
        )
    }

    /// Logical heap footprint of the arena's backing arrays, in bytes —
    /// the quantity the chunked arena's budget accounting tracks.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.cones.len() * 4
            + self.po_cols.len() * 4
            + (self.cone_off.len() + self.po_off.len()) * 8
    }

    /// The inclusive, topologically sorted fan-out cone in slot `i` (for
    /// [`ConeArena::build`], the slot of node `i`); its first entry is
    /// the root itself.
    #[inline]
    pub fn cone(&self, i: usize) -> &[u32] {
        &self.cones[self.cone_off[i]..self.cone_off[i + 1]]
    }

    /// PO columns reachable from the root in slot `i`, ascending.
    #[inline]
    pub fn reachable_cols(&self, i: usize) -> &[u32] {
        &self.po_cols[self.po_off[i]..self.po_off[i + 1]]
    }

    /// Flat offset of node `i`'s first reachable-PO slot — the key for
    /// accumulator arrays laid out over [`ConeArena::total_reachable`].
    #[inline]
    pub fn reachable_start(&self, i: usize) -> usize {
        self.po_off[i]
    }

    /// Total reachable-PO slots across all nodes (the length of a flat
    /// per-(node, reachable-PO) accumulator).
    #[inline]
    pub fn total_reachable(&self) -> usize {
        self.po_cols.len()
    }

    /// Total cone entries across all nodes.
    #[inline]
    pub fn total_cone_len(&self) -> usize {
        self.cones.len()
    }

    /// The per-node reachable-PO offsets (`node_count + 1` entries) —
    /// exposed so downstream consumers can clone the reachability CSR
    /// without rebuilding it.
    #[inline]
    pub fn reachable_offsets(&self) -> &[usize] {
        &self.po_off
    }

    /// The concatenated reachable-PO column lists behind
    /// [`ConeArena::reachable_cols`].
    #[inline]
    pub fn reachable_cols_flat(&self) -> &[u32] {
        &self.po_cols
    }
}

/// Work counters from one [`ConeArena::build_for_with_stats`] call.
///
/// The deduplicating builder's regression guard: on fan-out-heavy
/// (diamond) circuits a full build should report `dfs_edges == 0` —
/// every cone is assembled from its successors' finished cones instead
/// of re-traversing the shared fan-out graph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConeBuildStats {
    /// Fan-out edges walked by the sparse-DFS fallback.
    pub dfs_edges: usize,
    /// Roots built by the DFS fallback (some successor not yet built).
    pub dfs_roots: usize,
    /// Roots assembled purely from finished successor cones.
    pub merged_roots: usize,
    /// Cone entries read from finished cones during merges and splices.
    pub spliced_entries: usize,
}

/// Sentinel marking "node is not a planned root" in
/// [`ChunkedConeArena`]'s node-to-chunk maps.
const NO_CHUNK: u32 = u32::MAX;

/// A chunked, lazily-built cone arena: the scalable replacement for
/// materializing every node's cone at once.
///
/// [`ConeArena::build`] holds the whole-circuit cone closure — `O(nodes
/// × cone-size)` memory that explodes quadratically on deep circuits.
/// `ChunkedConeArena` instead *plans* a partition of the requested roots
/// into chunks of `chunk_size`, grouped by PO region (roots are ordered
/// by the minimum primary-output column they reach, then by topological
/// rank, so roots sharing fan-out land in the same chunk and the
/// deduplicating builder collapses their shared sub-cones). Each chunk's
/// [`ConeArena`] is built on first touch and can be released once
/// consumed, so peak memory scales with the *active working set* — one
/// chunk plus the plan's `O(nodes)` index — not the closure.
///
/// Byte accounting: [`resident_bytes`](ChunkedConeArena::resident_bytes)
/// is the retained footprint of all built chunks,
/// [`peak_bytes`](ChunkedConeArena::peak_bytes) the high-water mark
/// (including the builder's transient assembly buffer, which is
/// proportional to the chunk being built). An optional
/// [`budget`](ChunkedConeArena::with_budget) evicts the oldest resident
/// chunks (never the one just built) when the retained footprint
/// exceeds it.
///
/// # Example
///
/// ```
/// use ser_netlist::csr::{ChunkedConeArena, ConeArena, CsrView};
/// use ser_netlist::generate;
///
/// let c = generate::sec32("t");
/// let csr = CsrView::build(&c);
/// let full = ConeArena::build(&csr);
/// let mut chunked = ChunkedConeArena::plan(&csr, 64);
/// for id in c.node_ids() {
///     // Lazily built, bitwise identical to the monolithic arena.
///     assert_eq!(chunked.cone_of(&csr, id.index()), full.cone(id.index()));
/// }
/// assert!(chunked.peak_bytes() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct ChunkedConeArena {
    chunk_off: Vec<usize>,
    roots: Vec<u32>,
    /// Node -> owning chunk (NO_CHUNK when the node is not a root).
    chunk_of_node: Vec<u32>,
    /// Node -> slot within its owning chunk's arena.
    slot_of_node: Vec<u32>,
    built: Vec<Option<ConeArena>>,
    /// Build order of the currently resident chunks (eviction FIFO).
    resident: Vec<usize>,
    resident_bytes: usize,
    peak_bytes: usize,
    budget: Option<usize>,
    evictions: usize,
}

impl ChunkedConeArena {
    /// Plans chunks covering **every** node of `csr`.
    pub fn plan(csr: &CsrView, chunk_size: usize) -> Self {
        let all: Vec<u32> = (0..csr.node_count() as u32).collect();
        Self::plan_for(csr, &all, chunk_size)
    }

    /// Plans chunks covering `roots` only (duplicates are ignored).
    /// Nothing is built until a chunk is first touched.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    pub fn plan_for(csr: &CsrView, roots: &[u32], chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        let n = csr.node_count();

        // PO-region key: the smallest output column a node reaches
        // (NO_PO for dead nodes), by one reverse-topological pass.
        let mut region = vec![NO_PO; n];
        for &i in csr.topo().iter().rev() {
            let mut key = csr.po_col_of(i as usize);
            for &s in csr.fanout_of(i as usize) {
                key = key.min(region[s as usize]);
            }
            region[i as usize] = key;
        }

        let mut ordered = roots.to_vec();
        ordered.sort_unstable_by_key(|&r| (region[r as usize], csr.rank_of(r as usize)));
        ordered.dedup();

        let mut chunk_off: Vec<usize> = (0..ordered.len()).step_by(chunk_size).collect();
        chunk_off.push(ordered.len());
        let n_chunks = chunk_off.len() - 1;

        let mut chunk_of_node = vec![NO_CHUNK; n];
        let mut slot_of_node = vec![NO_CHUNK; n];
        for k in 0..n_chunks {
            for (slot, &r) in ordered[chunk_off[k]..chunk_off[k + 1]].iter().enumerate() {
                chunk_of_node[r as usize] = k as u32;
                slot_of_node[r as usize] = slot as u32;
            }
        }

        ChunkedConeArena {
            chunk_off,
            roots: ordered,
            chunk_of_node,
            slot_of_node,
            built: vec![None; n_chunks],
            resident: Vec::new(),
            resident_bytes: 0,
            peak_bytes: 0,
            budget: None,
            evictions: 0,
        }
    }

    /// Sets a retained-bytes budget: after each build, the oldest
    /// resident chunks (never the one just built) are evicted until the
    /// retained footprint fits.
    pub fn with_budget(mut self, bytes: usize) -> Self {
        self.budget = Some(bytes);
        self
    }

    /// Number of planned chunks.
    #[inline]
    pub fn chunk_count(&self) -> usize {
        self.chunk_off.len() - 1
    }

    /// The roots assigned to chunk `k`, in slot order.
    #[inline]
    pub fn chunk_roots(&self, k: usize) -> &[u32] {
        &self.roots[self.chunk_off[k]..self.chunk_off[k + 1]]
    }

    /// All planned roots, chunk-grouped (deduplicated PO-region order).
    #[inline]
    pub fn planned_roots(&self) -> &[u32] {
        &self.roots
    }

    /// Whether chunk `k` is currently built and resident.
    #[inline]
    pub fn is_resident(&self, k: usize) -> bool {
        self.built[k].is_some()
    }

    /// The resident arena of chunk `k`, or `None` when not built — the
    /// borrow-friendly companion of [`ensure`](Self::ensure) (build
    /// first, then read through a shared borrow).
    #[inline]
    pub fn chunk_arena(&self, k: usize) -> Option<&ConeArena> {
        self.built[k].as_ref()
    }

    /// The chunk and slot owning `node`'s cone, or `None` if `node` was
    /// not in the planned roots.
    #[inline]
    pub fn slot_of(&self, node: usize) -> Option<(usize, usize)> {
        if self.chunk_of_node[node] == NO_CHUNK {
            None
        } else {
            Some((
                self.chunk_of_node[node] as usize,
                self.slot_of_node[node] as usize,
            ))
        }
    }

    /// The arena of chunk `k`, building it on first touch.
    pub fn ensure(&mut self, csr: &CsrView, k: usize) -> &ConeArena {
        if self.built[k].is_none() {
            let arena = ConeArena::build_for(csr, self.chunk_roots(k));
            let bytes = arena.bytes();
            self.resident_bytes += bytes;
            // The builder's processing-order buffer coexists with the
            // assembled arena, so the true high-water mark includes one
            // extra copy of the chunk being built.
            self.peak_bytes = self.peak_bytes.max(self.resident_bytes + bytes);
            self.built[k] = Some(arena);
            self.resident.push(k);
            if let Some(budget) = self.budget {
                while self.resident_bytes > budget && self.resident.len() > 1 {
                    let victim = if self.resident[0] == k {
                        self.resident.remove(1)
                    } else {
                        self.resident.remove(0)
                    };
                    self.drop_chunk(victim);
                    self.evictions += 1;
                }
            }
        }
        self.built[k].as_ref().expect("chunk built above")
    }

    /// Builds every chunk and keeps all of them resident — the small-
    /// circuit path where the whole closure fits comfortably. The byte
    /// budget is ignored.
    pub fn build_all(&mut self, csr: &CsrView) {
        let budget = self.budget.take();
        for k in 0..self.chunk_count() {
            self.ensure(csr, k);
        }
        self.budget = budget;
    }

    /// Releases chunk `k`'s arena (a later touch rebuilds it).
    pub fn release(&mut self, k: usize) {
        if self.built[k].is_some() {
            if let Some(pos) = self.resident.iter().position(|&c| c == k) {
                self.resident.remove(pos);
            }
            self.drop_chunk(k);
        }
    }

    fn drop_chunk(&mut self, k: usize) {
        let bytes = self.built[k].as_ref().map_or(0, ConeArena::bytes);
        self.resident_bytes -= bytes;
        self.built[k] = None;
    }

    /// The cone of `node`, lazily building its chunk on first touch.
    ///
    /// # Panics
    ///
    /// Panics if `node` was not in the planned roots.
    pub fn cone_of(&mut self, csr: &CsrView, node: usize) -> &[u32] {
        let (k, slot) = self.slot_of(node).expect("node must be a planned root");
        self.ensure(csr, k).cone(slot)
    }

    /// The reachable-PO columns of `node`, lazily building its chunk.
    ///
    /// # Panics
    ///
    /// Panics if `node` was not in the planned roots.
    pub fn reachable_cols_of(&mut self, csr: &CsrView, node: usize) -> &[u32] {
        let (k, slot) = self.slot_of(node).expect("node must be a planned root");
        self.ensure(csr, k).reachable_cols(slot)
    }

    /// Retained bytes across all currently resident chunk arenas.
    #[inline]
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// High-water mark of [`resident_bytes`](Self::resident_bytes) plus
    /// the builder's transient assembly buffer.
    #[inline]
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Number of budget-driven LRU evictions since planning (explicit
    /// [`release`](Self::release) calls are not counted) — the signal a
    /// memory governor surfaces as a
    /// [`DegradationEvent::ConesShed`](crate::govern::DegradationEvent).
    #[inline]
    pub fn evictions(&self) -> usize {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cone;
    use crate::generate;

    #[test]
    fn csr_matches_circuit_adjacency() {
        let c = generate::c17();
        let csr = CsrView::build(&c);
        assert_eq!(csr.node_count(), c.node_count());
        for id in c.node_ids() {
            let i = id.index();
            assert_eq!(csr.kind(i), c.node(id).kind);
            let fanin: Vec<u32> = c.node(id).fanin.iter().map(|f| f.index() as u32).collect();
            assert_eq!(csr.fanin_of(i), &fanin[..]);
            let fanout: Vec<u32> = c.fanout(id).iter().map(|s| s.index() as u32).collect();
            assert_eq!(csr.fanout_of(i), &fanout[..]);
        }
        let topo: Vec<u32> = c
            .topological_order()
            .iter()
            .map(|id| id.index() as u32)
            .collect();
        assert_eq!(csr.topo(), &topo[..]);
        for (r, &i) in topo.iter().enumerate() {
            assert_eq!(csr.rank_of(i as usize), r as u32);
        }
    }

    #[test]
    fn arena_cones_match_per_call_cones() {
        let c = generate::sec32("t");
        let csr = CsrView::build(&c);
        let arena = ConeArena::build(&csr);
        for id in c.node_ids() {
            let want: Vec<u32> = cone::fanout_cone(&c, id)
                .iter()
                .map(|x| x.index() as u32)
                .collect();
            assert_eq!(arena.cone(id.index()), &want[..], "cone of {id}");
        }
    }

    #[test]
    fn arena_reachable_cols_match_reachable_outputs() {
        let c = generate::sec32("t");
        let csr = CsrView::build(&c);
        let arena = ConeArena::build(&csr);
        for id in c.node_ids() {
            let mut want: Vec<u32> = cone::reachable_outputs(&c, id)
                .iter()
                .map(|po| {
                    c.primary_outputs()
                        .iter()
                        .position(|p| p == po)
                        .expect("PO present") as u32
                })
                .collect();
            want.sort_unstable();
            assert_eq!(arena.reachable_cols(id.index()), &want[..], "cols of {id}");
        }
    }

    #[test]
    fn po_columns_follow_declaration_order() {
        let c = generate::c17();
        let csr = CsrView::build(&c);
        for (j, &po) in c.primary_outputs().iter().enumerate() {
            assert_eq!(csr.po_col_of(po.index()), j as u32);
            assert_eq!(csr.outputs()[j], po.index() as u32);
        }
        let non_po = c.primary_inputs()[0];
        assert_eq!(csr.po_col_of(non_po.index()), NO_PO);
    }

    #[test]
    fn cone_of_po_is_singleton() {
        let c = generate::c17();
        let csr = CsrView::build(&c);
        let arena = ConeArena::build(&csr);
        for (j, &po) in c.primary_outputs().iter().enumerate() {
            assert_eq!(arena.cone(po.index()), &[po.index() as u32]);
            assert_eq!(arena.reachable_cols(po.index()), &[j as u32]);
        }
    }

    #[test]
    fn subset_arena_matches_full_arena_slots() {
        let c = generate::sec32("t");
        let csr = CsrView::build(&c);
        let full = ConeArena::build(&csr);
        let roots: Vec<u32> = (0..c.node_count() as u32).filter(|r| r % 3 == 1).collect();
        let sub = ConeArena::build_for(&csr, &roots);
        for (slot, &root) in roots.iter().enumerate() {
            assert_eq!(sub.cone(slot), full.cone(root as usize), "cone of {root}");
            assert_eq!(
                sub.reachable_cols(slot),
                full.reachable_cols(root as usize),
                "cols of {root}"
            );
        }
        let expect: usize = roots
            .iter()
            .map(|&r| full.cone(r as usize).len())
            .sum::<usize>();
        assert_eq!(sub.total_cone_len(), expect);
    }

    /// Independent naive per-root DFS builder — the pre-dedup reference.
    fn naive_build_for(csr: &CsrView, roots: &[u32]) -> (Vec<Vec<u32>>, Vec<Vec<u32>>) {
        let n = csr.node_count();
        let mut cones = Vec::new();
        let mut cols = Vec::new();
        for &root in roots {
            let mut seen = vec![false; n];
            let mut stack = vec![root];
            let mut cone = vec![root];
            seen[root as usize] = true;
            while let Some(u) = stack.pop() {
                for &v in csr.fanout_of(u as usize) {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        cone.push(v);
                        stack.push(v);
                    }
                }
            }
            cone.sort_unstable_by_key(|&v| csr.rank_of(v as usize));
            let mut c: Vec<u32> = cone
                .iter()
                .map(|&v| csr.po_col_of(v as usize))
                .filter(|&c| c != NO_PO)
                .collect();
            c.sort_unstable();
            cones.push(cone);
            cols.push(c);
        }
        (cones, cols)
    }

    /// A diamond ladder: each stage forks into two parallel gates that
    /// reconverge, so every node's cone overlaps its siblings' almost
    /// entirely — the worst case for the old per-root re-traversal.
    fn diamond_ladder(stages: usize) -> Circuit {
        use crate::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new("diamonds");
        let mut cur = b.input("a");
        let aux = b.input("b");
        for s in 0..stages {
            let l = b
                .gate(GateKind::Nand, format!("l{s}"), &[cur, aux])
                .unwrap();
            let r = b.gate(GateKind::Nor, format!("r{s}"), &[cur, aux]).unwrap();
            cur = b.gate(GateKind::And, format!("j{s}"), &[l, r]).unwrap();
        }
        b.mark_output(cur);
        b.finish().unwrap()
    }

    #[test]
    fn deduped_full_build_matches_naive_on_diamond_ladder() {
        let c = diamond_ladder(40);
        let csr = CsrView::build(&c);
        let roots: Vec<u32> = (0..c.node_count() as u32).collect();
        let (arena, stats) = ConeArena::build_for_with_stats(&csr, &roots);
        let (want_cones, want_cols) = naive_build_for(&csr, &roots);
        for (i, (wc, wk)) in want_cones.iter().zip(&want_cols).enumerate() {
            assert_eq!(arena.cone(i), &wc[..], "cone of {i}");
            assert_eq!(arena.reachable_cols(i), &wk[..], "cols of {i}");
        }
        // Regression guard: with every node requested, each cone is
        // assembled from its successors' finished cones — the shared
        // diamond fan-out must never be re-traversed per root.
        assert_eq!(stats.dfs_edges, 0, "no DFS re-traversal: {stats:?}");
        assert_eq!(stats.dfs_roots, 0);
        assert!(stats.merged_roots > 0);
        // Merge work is bounded by reading each successor cone once per
        // predecessor edge — not by re-walking the cone subgraph edge
        // set per root (which on this ladder is ~2 edges per entry).
        let per_edge_bound: usize = roots
            .iter()
            .flat_map(|&r| csr.fanout_of(r as usize))
            .map(|&s| arena.cone(s as usize).len())
            .sum();
        assert!(
            stats.spliced_entries <= per_edge_bound,
            "{} > {per_edge_bound}",
            stats.spliced_entries
        );
    }

    #[test]
    fn deduped_subset_build_matches_naive() {
        // Subsets exercise the DFS + splice fallback (some successors
        // are not requested roots), including duplicate roots.
        let c = generate::sec32("t");
        let csr = CsrView::build(&c);
        let roots: Vec<u32> = (0..c.node_count() as u32)
            .filter(|r| r % 5 == 2)
            .chain([7, 7])
            .collect();
        let arena = ConeArena::build_for(&csr, &roots);
        let (want_cones, want_cols) = naive_build_for(&csr, &roots);
        for (slot, (wc, wk)) in want_cones.iter().zip(&want_cols).enumerate() {
            assert_eq!(arena.cone(slot), &wc[..], "slot {slot}");
            assert_eq!(arena.reachable_cols(slot), &wk[..], "slot {slot}");
        }
    }

    #[test]
    fn chunked_arena_matches_full_across_chunk_sizes() {
        let c = generate::sec32("t");
        let csr = CsrView::build(&c);
        let full = ConeArena::build(&csr);
        for chunk_size in [1, 7, 64, 1 << 20] {
            let mut chunked = ChunkedConeArena::plan(&csr, chunk_size);
            for id in c.node_ids() {
                let i = id.index();
                assert_eq!(chunked.cone_of(&csr, i), full.cone(i), "cone of {i}");
                assert_eq!(
                    chunked.reachable_cols_of(&csr, i),
                    full.reachable_cols(i),
                    "cols of {i}"
                );
            }
        }
    }

    #[test]
    fn chunked_arena_is_lazy_and_releasable() {
        let c = generate::sec32("t");
        let csr = CsrView::build(&c);
        let mut chunked = ChunkedConeArena::plan(&csr, 32);
        assert!(chunked.chunk_count() > 2);
        assert_eq!(chunked.resident_bytes(), 0, "nothing built at plan time");
        let node = chunked.chunk_roots(0)[0] as usize;
        chunked.cone_of(&csr, node);
        assert!(chunked.is_resident(0));
        assert!(!chunked.is_resident(1), "untouched chunks stay unbuilt");
        let resident = chunked.resident_bytes();
        assert!(resident > 0);
        assert!(chunked.peak_bytes() >= resident);
        chunked.release(0);
        assert_eq!(chunked.resident_bytes(), 0);
        assert!(!chunked.is_resident(0));
        // A later touch rebuilds the same cone.
        let full = ConeArena::build(&csr);
        assert_eq!(chunked.cone_of(&csr, node), full.cone(node));
    }

    #[test]
    fn chunked_budget_evicts_oldest_chunks() {
        let c = generate::sec32("t");
        let csr = CsrView::build(&c);
        let mut chunked = ChunkedConeArena::plan(&csr, 16).with_budget(1);
        for k in 0..chunked.chunk_count() {
            chunked.ensure(&csr, k);
            // The chunk just built always stays resident.
            assert!(chunked.is_resident(k));
            assert_eq!(chunked.resident.len(), 1, "budget keeps one chunk");
        }
        assert!(chunked.peak_bytes() > 0);
        // Every build after the first evicted its predecessor.
        assert_eq!(chunked.evictions(), chunked.chunk_count() - 1);
    }

    #[test]
    fn explicit_release_is_not_an_eviction() {
        let c = generate::c17();
        let csr = CsrView::build(&c);
        let mut chunked = ChunkedConeArena::plan(&csr, 4);
        chunked.ensure(&csr, 0);
        chunked.release(0);
        assert_eq!(chunked.evictions(), 0);
    }

    #[test]
    fn chunked_build_all_keeps_everything_resident() {
        let c = generate::c17();
        let csr = CsrView::build(&c);
        let mut chunked = ChunkedConeArena::plan(&csr, 4).with_budget(1);
        chunked.build_all(&csr);
        for k in 0..chunked.chunk_count() {
            assert!(chunked.is_resident(k), "chunk {k}");
        }
        let full = ConeArena::build(&csr);
        for id in c.node_ids() {
            assert_eq!(chunked.cone_of(&csr, id.index()), full.cone(id.index()));
        }
    }

    #[test]
    fn chunked_plan_for_subset_matches_build_for() {
        let c = generate::sec32("t");
        let csr = CsrView::build(&c);
        let roots: Vec<u32> = (0..c.node_count() as u32).filter(|r| r % 3 == 0).collect();
        let reference = ConeArena::build_for(&csr, &roots);
        let mut chunked = ChunkedConeArena::plan_for(&csr, &roots, 11);
        for (slot, &r) in roots.iter().enumerate() {
            assert_eq!(chunked.cone_of(&csr, r as usize), reference.cone(slot));
            assert_eq!(
                chunked.reachable_cols_of(&csr, r as usize),
                reference.reachable_cols(slot)
            );
        }
        assert_eq!(chunked.slot_of(1), None, "non-roots carry no slot");
    }

    #[test]
    fn arena_totals_are_consistent() {
        let c = generate::c17();
        let csr = CsrView::build(&c);
        let arena = ConeArena::build(&csr);
        let sum: usize = c.node_ids().map(|id| arena.cone(id.index()).len()).sum();
        assert_eq!(arena.total_cone_len(), sum);
        let rsum: usize = c
            .node_ids()
            .map(|id| arena.reachable_cols(id.index()).len())
            .sum();
        assert_eq!(arena.total_reachable(), rsum);
        assert_eq!(arena.reachable_offsets().len(), c.node_count() + 1);
        assert_eq!(arena.reachable_cols_flat().len(), rsum);
    }
}
