//! Flat CSR (compressed-sparse-row) views of a [`Circuit`] for hot-path
//! kernels.
//!
//! The pointer-rich [`Circuit`] representation (one heap `Vec` of fan-ins
//! and a `String` name per node) is convenient to build and query but
//! hostile to tight simulation loops: every gate evaluation chases two
//! pointers and the nodes it touches are scattered across the heap.
//! [`CsrView`] flattens the structure the kernels actually need — gate
//! kinds, fan-in/fan-out adjacency and the topological order — into a
//! handful of contiguous `u32` arrays, and [`ConeArena`] materializes
//! *every* node's fan-out cone (plus its reachable-primary-output column
//! list) into one shared arena so per-strike resimulation touches exactly
//! the nodes that can change.
//!
//! # Example
//!
//! ```
//! use ser_netlist::csr::{ConeArena, CsrView};
//! use ser_netlist::generate;
//!
//! let c17 = generate::c17();
//! let csr = CsrView::build(&c17);
//! let arena = ConeArena::build(&csr);
//! let g10 = c17.find("10").unwrap();
//! // The cone is topologically sorted and starts at its root.
//! assert_eq!(arena.cone(g10.index())[0], g10.index() as u32);
//! // Gate 10 reaches only the first primary output (net 22).
//! assert_eq!(arena.reachable_cols(g10.index()), &[0]);
//! ```

use crate::circuit::Circuit;
use crate::gate::GateKind;

/// Sentinel marking "not a primary output" in [`CsrView::po_col_of`].
pub const NO_PO: u32 = u32::MAX;

/// A flat, cache-friendly view of a circuit's structure.
///
/// All node references are dense `u32` indices (the same indices as
/// [`NodeId::index`](crate::NodeId::index)); adjacency is stored as
/// offset + index arrays in the classic CSR layout.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrView {
    kinds: Vec<GateKind>,
    fanin_off: Vec<u32>,
    fanin: Vec<u32>,
    fanout_off: Vec<u32>,
    fanout: Vec<u32>,
    topo: Vec<u32>,
    rank: Vec<u32>,
    inputs: Vec<u32>,
    outputs: Vec<u32>,
    po_col: Vec<u32>,
}

impl CsrView {
    /// Flattens `circuit` into CSR arrays. `O(V + E)`.
    pub fn build(circuit: &Circuit) -> Self {
        let n = circuit.node_count();
        let mut kinds = Vec::with_capacity(n);
        let mut fanin_off = Vec::with_capacity(n + 1);
        let mut fanin = Vec::with_capacity(circuit.edge_count());
        fanin_off.push(0);
        for node in circuit.nodes() {
            kinds.push(node.kind);
            fanin.extend(node.fanin.iter().map(|f| f.index() as u32));
            fanin_off.push(fanin.len() as u32);
        }

        let mut fanout_off = Vec::with_capacity(n + 1);
        let mut fanout = Vec::with_capacity(fanin.len());
        fanout_off.push(0);
        for i in 0..n {
            fanout.extend(
                circuit
                    .fanout(crate::NodeId::new(i))
                    .iter()
                    .map(|s| s.index() as u32),
            );
            fanout_off.push(fanout.len() as u32);
        }

        let topo: Vec<u32> = circuit
            .topological_order()
            .iter()
            .map(|id| id.index() as u32)
            .collect();
        let mut rank = vec![0u32; n];
        for (r, &i) in topo.iter().enumerate() {
            rank[i as usize] = r as u32;
        }

        let inputs: Vec<u32> = circuit
            .primary_inputs()
            .iter()
            .map(|id| id.index() as u32)
            .collect();
        let outputs: Vec<u32> = circuit
            .primary_outputs()
            .iter()
            .map(|id| id.index() as u32)
            .collect();
        let mut po_col = vec![NO_PO; n];
        for (j, &po) in outputs.iter().enumerate() {
            po_col[po as usize] = j as u32;
        }

        CsrView {
            kinds,
            fanin_off,
            fanin,
            fanout_off,
            fanout,
            topo,
            rank,
            inputs,
            outputs,
            po_col,
        }
    }

    /// Total node count.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Gate kind of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn kind(&self, i: usize) -> GateKind {
        self.kinds[i]
    }

    /// Fan-in node indices of node `i`, in pin order.
    #[inline]
    pub fn fanin_of(&self, i: usize) -> &[u32] {
        &self.fanin[self.fanin_off[i] as usize..self.fanin_off[i + 1] as usize]
    }

    /// Fan-out node indices of node `i` (one entry per pin fed).
    #[inline]
    pub fn fanout_of(&self, i: usize) -> &[u32] {
        &self.fanout[self.fanout_off[i] as usize..self.fanout_off[i + 1] as usize]
    }

    /// The topological order as one flat slice of node indices.
    #[inline]
    pub fn topo(&self) -> &[u32] {
        &self.topo
    }

    /// Topological rank of node `i` (its position in [`CsrView::topo`]).
    #[inline]
    pub fn rank_of(&self, i: usize) -> u32 {
        self.rank[i]
    }

    /// Primary-input node indices, in declaration order.
    #[inline]
    pub fn inputs(&self) -> &[u32] {
        &self.inputs
    }

    /// Primary-output node indices, in declaration order (defining the PO
    /// column space).
    #[inline]
    pub fn outputs(&self) -> &[u32] {
        &self.outputs
    }

    /// PO column of node `i`, or [`NO_PO`] if it is not a primary output.
    #[inline]
    pub fn po_col_of(&self, i: usize) -> u32 {
        self.po_col[i]
    }
}

/// Every node's fan-out cone and reachable-PO column list, packed into one
/// CSR arena.
///
/// Cones are inclusive (the root is the first entry) and topologically
/// sorted, so a strike simulation can force the root and sweep the tail.
/// Reachable-PO lists hold *column indices* into [`CsrView::outputs`], in
/// ascending order. Building the arena is sparsity-aware: each cone costs
/// `O(|cone| · log |cone|)` (a sparse DFS plus a rank sort), not a full
/// `O(V)` pass per node.
#[derive(Debug, Clone, PartialEq)]
pub struct ConeArena {
    cone_off: Vec<usize>,
    cones: Vec<u32>,
    po_off: Vec<usize>,
    po_cols: Vec<u32>,
}

impl ConeArena {
    /// Materializes all cones of `csr` into one arena, in node order —
    /// slot `i` is node `i`'s cone, so slot and node index coincide.
    pub fn build(csr: &CsrView) -> Self {
        let all: Vec<u32> = (0..csr.node_count() as u32).collect();
        Self::build_for(csr, &all)
    }

    /// Materializes the cones of `roots` only, **slot-indexed**: slot `t`
    /// of the arena holds the cone and reachable-PO list of `roots[t]`.
    /// Selective re-simulation uses this to pay for exactly the cones it
    /// replays instead of the whole circuit.
    pub fn build_for(csr: &CsrView, roots: &[u32]) -> Self {
        let n = csr.node_count();
        let mut cone_off = Vec::with_capacity(roots.len() + 1);
        let mut po_off = Vec::with_capacity(roots.len() + 1);
        let mut cones: Vec<u32> = Vec::new();
        let mut po_cols: Vec<u32> = Vec::new();
        cone_off.push(0);
        po_off.push(0);

        // Per-slot visited stamps: stamp[v] == slot marks v as reached, so
        // the array never needs clearing between roots.
        let mut stamp = vec![NO_PO; n];
        let mut stack: Vec<u32> = Vec::new();
        for (slot, &root) in roots.iter().enumerate() {
            let slot = slot as u32;
            let start = cones.len();
            stamp[root as usize] = slot;
            cones.push(root);
            stack.push(root);
            while let Some(u) = stack.pop() {
                for &v in csr.fanout_of(u as usize) {
                    if stamp[v as usize] != slot {
                        stamp[v as usize] = slot;
                        cones.push(v);
                        stack.push(v);
                    }
                }
            }
            cones[start..].sort_unstable_by_key(|&v| csr.rank_of(v as usize));
            for &v in &cones[start..] {
                let col = csr.po_col_of(v as usize);
                if col != NO_PO {
                    po_cols.push(col);
                }
            }
            po_cols[po_off[slot as usize]..].sort_unstable();
            cone_off.push(cones.len());
            po_off.push(po_cols.len());
        }

        ConeArena {
            cone_off,
            cones,
            po_off,
            po_cols,
        }
    }

    /// The inclusive, topologically sorted fan-out cone in slot `i` (for
    /// [`ConeArena::build`], the slot of node `i`); its first entry is
    /// the root itself.
    #[inline]
    pub fn cone(&self, i: usize) -> &[u32] {
        &self.cones[self.cone_off[i]..self.cone_off[i + 1]]
    }

    /// PO columns reachable from the root in slot `i`, ascending.
    #[inline]
    pub fn reachable_cols(&self, i: usize) -> &[u32] {
        &self.po_cols[self.po_off[i]..self.po_off[i + 1]]
    }

    /// Flat offset of node `i`'s first reachable-PO slot — the key for
    /// accumulator arrays laid out over [`ConeArena::total_reachable`].
    #[inline]
    pub fn reachable_start(&self, i: usize) -> usize {
        self.po_off[i]
    }

    /// Total reachable-PO slots across all nodes (the length of a flat
    /// per-(node, reachable-PO) accumulator).
    #[inline]
    pub fn total_reachable(&self) -> usize {
        self.po_cols.len()
    }

    /// Total cone entries across all nodes.
    #[inline]
    pub fn total_cone_len(&self) -> usize {
        self.cones.len()
    }

    /// The per-node reachable-PO offsets (`node_count + 1` entries) —
    /// exposed so downstream consumers can clone the reachability CSR
    /// without rebuilding it.
    #[inline]
    pub fn reachable_offsets(&self) -> &[usize] {
        &self.po_off
    }

    /// The concatenated reachable-PO column lists behind
    /// [`ConeArena::reachable_cols`].
    #[inline]
    pub fn reachable_cols_flat(&self) -> &[u32] {
        &self.po_cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cone;
    use crate::generate;

    #[test]
    fn csr_matches_circuit_adjacency() {
        let c = generate::c17();
        let csr = CsrView::build(&c);
        assert_eq!(csr.node_count(), c.node_count());
        for id in c.node_ids() {
            let i = id.index();
            assert_eq!(csr.kind(i), c.node(id).kind);
            let fanin: Vec<u32> = c.node(id).fanin.iter().map(|f| f.index() as u32).collect();
            assert_eq!(csr.fanin_of(i), &fanin[..]);
            let fanout: Vec<u32> = c.fanout(id).iter().map(|s| s.index() as u32).collect();
            assert_eq!(csr.fanout_of(i), &fanout[..]);
        }
        let topo: Vec<u32> = c
            .topological_order()
            .iter()
            .map(|id| id.index() as u32)
            .collect();
        assert_eq!(csr.topo(), &topo[..]);
        for (r, &i) in topo.iter().enumerate() {
            assert_eq!(csr.rank_of(i as usize), r as u32);
        }
    }

    #[test]
    fn arena_cones_match_per_call_cones() {
        let c = generate::sec32("t");
        let csr = CsrView::build(&c);
        let arena = ConeArena::build(&csr);
        for id in c.node_ids() {
            let want: Vec<u32> = cone::fanout_cone(&c, id)
                .iter()
                .map(|x| x.index() as u32)
                .collect();
            assert_eq!(arena.cone(id.index()), &want[..], "cone of {id}");
        }
    }

    #[test]
    fn arena_reachable_cols_match_reachable_outputs() {
        let c = generate::sec32("t");
        let csr = CsrView::build(&c);
        let arena = ConeArena::build(&csr);
        for id in c.node_ids() {
            let mut want: Vec<u32> = cone::reachable_outputs(&c, id)
                .iter()
                .map(|po| {
                    c.primary_outputs()
                        .iter()
                        .position(|p| p == po)
                        .expect("PO present") as u32
                })
                .collect();
            want.sort_unstable();
            assert_eq!(arena.reachable_cols(id.index()), &want[..], "cols of {id}");
        }
    }

    #[test]
    fn po_columns_follow_declaration_order() {
        let c = generate::c17();
        let csr = CsrView::build(&c);
        for (j, &po) in c.primary_outputs().iter().enumerate() {
            assert_eq!(csr.po_col_of(po.index()), j as u32);
            assert_eq!(csr.outputs()[j], po.index() as u32);
        }
        let non_po = c.primary_inputs()[0];
        assert_eq!(csr.po_col_of(non_po.index()), NO_PO);
    }

    #[test]
    fn cone_of_po_is_singleton() {
        let c = generate::c17();
        let csr = CsrView::build(&c);
        let arena = ConeArena::build(&csr);
        for (j, &po) in c.primary_outputs().iter().enumerate() {
            assert_eq!(arena.cone(po.index()), &[po.index() as u32]);
            assert_eq!(arena.reachable_cols(po.index()), &[j as u32]);
        }
    }

    #[test]
    fn subset_arena_matches_full_arena_slots() {
        let c = generate::sec32("t");
        let csr = CsrView::build(&c);
        let full = ConeArena::build(&csr);
        let roots: Vec<u32> = (0..c.node_count() as u32).filter(|r| r % 3 == 1).collect();
        let sub = ConeArena::build_for(&csr, &roots);
        for (slot, &root) in roots.iter().enumerate() {
            assert_eq!(sub.cone(slot), full.cone(root as usize), "cone of {root}");
            assert_eq!(
                sub.reachable_cols(slot),
                full.reachable_cols(root as usize),
                "cols of {root}"
            );
        }
        let expect: usize = roots
            .iter()
            .map(|&r| full.cone(r as usize).len())
            .sum::<usize>();
        assert_eq!(sub.total_cone_len(), expect);
    }

    #[test]
    fn arena_totals_are_consistent() {
        let c = generate::c17();
        let csr = CsrView::build(&c);
        let arena = ConeArena::build(&csr);
        let sum: usize = c.node_ids().map(|id| arena.cone(id.index()).len()).sum();
        assert_eq!(arena.total_cone_len(), sum);
        let rsum: usize = c
            .node_ids()
            .map(|id| arena.reachable_cols(id.index()).len())
            .sum();
        assert_eq!(arena.total_reachable(), rsum);
        assert_eq!(arena.reachable_offsets().len(), c.node_count() + 1);
        assert_eq!(arena.reachable_cols_flat().len(), rsum);
    }
}
