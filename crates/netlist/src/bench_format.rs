//! ISCAS'85 `.bench` format parsing and writing.
//!
//! The `.bench` dialect accepted here is the common one used by the
//! ISCAS'85/89 distributions and academic tools:
//!
//! ```text
//! # comment
//! INPUT(1)
//! INPUT(2)
//! OUTPUT(22)
//! 22 = NAND(10, 16)
//! 10 = NOT(1)
//! ```
//!
//! Signals may be defined in any order (the original files are not
//! topologically sorted); `OUTPUT` may precede the definition of its
//! signal. `DFF` and other sequential elements are rejected — the paper
//! (and this reproduction) treats combinational logic only.

use std::collections::HashMap;

use crate::circuit::Circuit;
use crate::error::ParseBenchError;
use crate::gate::{GateKind, Node};
use crate::id::NodeId;

/// Parses `.bench` text into a [`Circuit`] named `name`.
///
/// # Errors
///
/// Returns a [`ParseBenchError`] on syntax errors, unknown gate kinds,
/// undefined or doubly-driven signals, or structural problems (cycles,
/// bad arity, missing outputs).
///
/// # Example
///
/// ```
/// use ser_netlist::bench_format;
///
/// let src = "\
/// INPUT(a)
/// INPUT(b)
/// OUTPUT(y)
/// y = AND(a, b)
/// ";
/// let c = bench_format::parse(src, "toy")?;
/// assert_eq!(c.gate_count(), 1);
/// # Ok::<(), ser_netlist::ParseBenchError>(())
/// ```
pub fn parse(text: &str, name: &str) -> Result<Circuit, ParseBenchError> {
    /// A signal reference plus where it occurred (for diagnostics).
    struct Ref {
        name: String,
        line: usize,
        column: usize,
    }

    enum Decl {
        Input,
        Gate { kind: GateKind, fanin: Vec<Ref> },
    }

    let mut decls: Vec<(String, Decl)> = Vec::new();
    let mut outputs: Vec<Ref> = Vec::new();
    let mut defined_at: HashMap<String, usize> = HashMap::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let code = match raw.split('#').next() {
            Some(c) => c.trim(),
            None => "",
        };
        if code.is_empty() {
            continue;
        }

        if let Some(rest) = strip_directive(code, "INPUT") {
            let sig = rest.to_owned();
            if defined_at.insert(sig.clone(), line).is_some() {
                return Err(ParseBenchError::Redefined {
                    line,
                    column: column_in(raw, rest),
                    name: sig,
                });
            }
            decls.push((sig, Decl::Input));
        } else if let Some(rest) = strip_directive(code, "OUTPUT") {
            outputs.push(Ref {
                name: rest.to_owned(),
                line,
                column: column_in(raw, rest),
            });
        } else if let Some((lhs, rhs)) = code.split_once('=') {
            let lhs = lhs.trim();
            let sig = lhs.to_owned();
            let rhs = rhs.trim();
            let (kind_tok, args) = rhs.split_once('(').ok_or_else(|| ParseBenchError::Syntax {
                line,
                column: column_in(raw, rhs),
                text: code.to_owned(),
            })?;
            let kind_tok = kind_tok.trim();
            let args = args
                .strip_suffix(')')
                .ok_or_else(|| ParseBenchError::Syntax {
                    line,
                    column: column_in(raw, args),
                    text: code.to_owned(),
                })?;
            let kind: GateKind = kind_tok.parse().map_err(|_| ParseBenchError::UnknownGate {
                line,
                column: column_in(raw, kind_tok),
                kind: kind_tok.to_owned(),
            })?;
            if kind == GateKind::Input {
                return Err(ParseBenchError::Syntax {
                    line,
                    column: column_in(raw, kind_tok),
                    text: code.to_owned(),
                });
            }
            let fanin: Vec<Ref> = args
                .split(',')
                .map(|a| a.trim())
                .filter(|a| !a.is_empty())
                .map(|a| Ref {
                    name: a.to_owned(),
                    line,
                    column: column_in(raw, a),
                })
                .collect();
            if defined_at.insert(sig.clone(), line).is_some() {
                return Err(ParseBenchError::Redefined {
                    line,
                    column: column_in(raw, lhs),
                    name: sig,
                });
            }
            decls.push((sig, Decl::Gate { kind, fanin }));
        } else {
            return Err(ParseBenchError::Syntax {
                line,
                column: column_in(raw, code),
                text: code.to_owned(),
            });
        }
    }

    // Assign dense ids in declaration order, then resolve references.
    let index: HashMap<&str, usize> = decls
        .iter()
        .enumerate()
        .map(|(i, (sig, _))| (sig.as_str(), i))
        .collect();

    let mut nodes = Vec::with_capacity(decls.len());
    for (sig, decl) in &decls {
        let node = match decl {
            Decl::Input => Node {
                kind: GateKind::Input,
                fanin: Vec::new(),
                name: sig.clone(),
            },
            Decl::Gate { kind, fanin } => {
                let mut pins = Vec::with_capacity(fanin.len());
                for f in fanin {
                    let &i = index.get(f.name.as_str()).ok_or_else(|| {
                        ParseBenchError::UndefinedSignal {
                            line: f.line,
                            column: f.column,
                            name: f.name.clone(),
                        }
                    })?;
                    pins.push(NodeId::new(i));
                }
                Node {
                    kind: *kind,
                    fanin: pins,
                    name: sig.clone(),
                }
            }
        };
        nodes.push(node);
    }

    let mut pos = Vec::with_capacity(outputs.len());
    for out in &outputs {
        let &i = index
            .get(out.name.as_str())
            .ok_or_else(|| ParseBenchError::UndefinedSignal {
                line: out.line,
                column: out.column,
                name: out.name.clone(),
            })?;
        pos.push(NodeId::new(i));
    }

    Ok(Circuit::from_parts(name, nodes, pos)?)
}

/// 1-based byte column of `token` within `line`. `token` must be a
/// subslice of `line` (all parser tokens are — they come from `split`,
/// `trim` and `strip_*` on the raw line); a non-subslice falls back to a
/// plain substring search, and column 1 if even that fails.
fn column_in(line: &str, token: &str) -> usize {
    let line_start = line.as_ptr() as usize;
    let tok_start = token.as_ptr() as usize;
    if tok_start >= line_start && tok_start + token.len() <= line_start + line.len() {
        return tok_start - line_start + 1;
    }
    match line.find(token) {
        Some(off) => off + 1,
        None => 1,
    }
}

fn strip_directive<'a>(code: &'a str, directive: &str) -> Option<&'a str> {
    let rest = code.strip_prefix(directive)?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('(')?;
    let rest = rest.strip_suffix(')')?;
    Some(rest.trim())
}

/// Serializes a [`Circuit`] to `.bench` text. The output parses back to a
/// structurally identical circuit (same kinds, connectivity, PI/PO order).
pub fn write(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", circuit.name()));
    out.push_str(&format!(
        "# {} inputs  {} outputs  {} gates\n",
        circuit.primary_inputs().len(),
        circuit.primary_outputs().len(),
        circuit.gate_count()
    ));
    for &pi in circuit.primary_inputs() {
        out.push_str(&format!("INPUT({})\n", circuit.node(pi).name));
    }
    for &po in circuit.primary_outputs() {
        out.push_str(&format!("OUTPUT({})\n", circuit.node(po).name));
    }
    for &id in circuit.topological_order() {
        let node = circuit.node(id);
        if node.is_input() {
            continue;
        }
        let pins: Vec<&str> = node
            .fanin
            .iter()
            .map(|f| circuit.node(*f).name.as_str())
            .collect();
        out.push_str(&format!(
            "{} = {}({})\n",
            node.name,
            node.kind.bench_name(),
            pins.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    const C17_TEXT: &str = "\
# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn parses_c17() {
        let c = parse(C17_TEXT, "c17").unwrap();
        assert_eq!(c.primary_inputs().len(), 5);
        assert_eq!(c.primary_outputs().len(), 2);
        assert_eq!(c.gate_count(), 6);
        let g22 = c.find("22").unwrap();
        assert_eq!(c.node(g22).kind, GateKind::Nand);
        assert_eq!(c.node(g22).fanin.len(), 2);
    }

    #[test]
    fn out_of_order_definitions_ok() {
        let src = "\
OUTPUT(y)
y = NOT(x)
x = AND(a, b)
INPUT(a)
INPUT(b)
";
        let c = parse(src, "ooo").unwrap();
        assert_eq!(c.gate_count(), 2);
    }

    #[test]
    fn round_trip_preserves_structure() {
        let c = generate::c17();
        let text = write(&c);
        let c2 = parse(&text, c.name()).unwrap();
        assert_eq!(c.gate_count(), c2.gate_count());
        assert_eq!(c.primary_inputs().len(), c2.primary_inputs().len());
        assert_eq!(c.primary_outputs().len(), c2.primary_outputs().len());
        // Same connectivity by name.
        for id in c.node_ids() {
            let n1 = c.node(id);
            let id2 = c2.find(&n1.name).unwrap();
            let n2 = c2.node(id2);
            assert_eq!(n1.kind, n2.kind, "{}", n1.name);
            let pins1: Vec<&str> = n1.fanin.iter().map(|f| c.node(*f).name.as_str()).collect();
            let pins2: Vec<&str> = n2.fanin.iter().map(|f| c2.node(*f).name.as_str()).collect();
            assert_eq!(pins1, pins2, "{}", n1.name);
        }
    }

    #[test]
    fn rejects_unknown_gate() {
        let err = parse("INPUT(a)\nOUTPUT(y)\ny = LATCH(a)\n", "t").unwrap_err();
        assert!(matches!(err, ParseBenchError::UnknownGate { .. }), "{err}");
    }

    #[test]
    fn rejects_undefined_signal() {
        let err = parse("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n", "t").unwrap_err();
        assert!(
            matches!(err, ParseBenchError::UndefinedSignal { .. }),
            "{err}"
        );
    }

    #[test]
    fn rejects_double_drive() {
        let err = parse("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n", "t").unwrap_err();
        assert!(matches!(err, ParseBenchError::Redefined { .. }), "{err}");
    }

    #[test]
    fn rejects_garbage_line() {
        let err = parse("INPUT(a)\nOUTPUT(a)\nwhat is this\n", "t").unwrap_err();
        assert!(matches!(err, ParseBenchError::Syntax { .. }), "{err}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "\n# full comment\nINPUT(a)  # trailing\n\nOUTPUT(y)\ny = NOT(a)\n";
        let c = parse(src, "t").unwrap();
        assert_eq!(c.gate_count(), 1);
    }

    #[test]
    fn spaces_inside_directive() {
        let c = parse("INPUT( a )\nOUTPUT( y )\ny = NOT( a )\n", "t").unwrap();
        assert_eq!(c.gate_count(), 1);
    }

    /// Parse → emit → reparse is the identity on ISCAS c17: the reparsed
    /// circuit is structurally *equal* (not merely isomorphic), and the
    /// emitted text is a fixed point of the cycle.
    #[test]
    fn parse_emit_reparse_is_identity_on_c17() {
        let parsed = parse(C17_TEXT, "c17").unwrap();
        let emitted = write(&parsed);
        let reparsed = parse(&emitted, "c17").unwrap();
        assert_eq!(reparsed, parsed);
        assert_eq!(write(&reparsed), emitted, "emission must be stable");
    }

    #[test]
    fn rejects_truncated_gate_line() {
        assert!(parse("INPUT(a)\nOUTPUT(y)\ny = NAND(a", "t").is_err());
        assert!(parse("INPUT(a)\nOUTPUT(y)\ny =\n", "t").is_err());
        assert!(parse("INPUT(a\nOUTPUT(y)\ny = NOT(a)\n", "t").is_err());
    }
}
