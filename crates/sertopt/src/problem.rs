//! The optimization problem object shared by all four algorithms: a
//! search point → delay targets → matched cells → Eq. 5 cost.
//!
//! The search space has two move families, mirroring what the paper's
//! Table 1 actually exhibits:
//!
//! 1. **tension moves** — exact nullspace-of-`T` deltas: no PI→PO path
//!    delay changes at all (the zero-overhead guarantee);
//! 2. **slack moves** — per-logic-level slowdown coefficients, each gate
//!    bounded by its own baseline slack divided by the circuit depth, so
//!    shared slack is never over-committed by more than the coefficient
//!    scale. These are the moves behind the paper's 1.03–1.23× delay
//!    ratios, and the `W2·T/T₀` cost term polices them.
//!
//! # Evaluation engine
//!
//! Every evaluation realizes the targets through the precompiled
//! [`MatchPlan`] and then measures the assignment one of two ways
//! ([`EvalStrategy`]):
//!
//! * [`EvalStrategy::Incremental`] (default) — a persistent
//!   [`AnalysisSession`] per worker: the candidate is *diffed* against
//!   the session's current assignment and only the invalidated cones,
//!   rows and per-gate terms are recomputed. Independent candidates
//!   (finite-difference probes, GA populations) additionally batch
//!   across threads via [`DelayProblem::evaluate_batch`].
//! * [`EvalStrategy::FreshPerMove`] — one full
//!   [`cost::evaluate`](crate::cost::evaluate) per move. Since the
//!   single-engine consolidation this is a *cold-start session* per move
//!   ([`aserta::analyze`] constructs a session and extracts its report),
//!   kept as the equivalence oracle and the perf baseline the warm
//!   session is measured against.
//!
//! Both strategies produce **bitwise identical** candidates: the session
//! guarantees exact fidelity to the fresh analysis, and the per-gate
//! energy cache mirrors [`gate_energy`](crate::cost::gate_energy)'s
//! arithmetic term for term. The `determinism` test suite pins this.

use aserta::{timing_view, AnalysisSession, AsertaConfig, CircuitCells};
use ser_cells::Library;
use ser_logicsim::sensitize::{sensitization_probabilities, simulation_threads};
use ser_logicsim::SensitizationMatrix;
use ser_netlist::{topo, Circuit, NodeId};
use serde::{Deserialize, Serialize};

use crate::cost::{evaluate, CostBreakdown, CostWeights, EnergyModel};
use crate::error::EvalError;
use crate::matching::{MatchPlan, MatchingConfig};
use crate::nullspace::TensionSpace;
use crate::sta;

/// One fully-evaluated candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Eq. 5 cost (lower is better).
    pub cost: f64,
    /// The metric breakdown.
    pub breakdown: CostBreakdown,
    /// The realized assignment.
    pub cells: CircuitCells,
}

/// How [`DelayProblem`] measures a candidate assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EvalStrategy {
    /// Persistent [`AnalysisSession`]s with delta application and
    /// thread-batched independent evaluations (the default).
    #[default]
    Incremental,
    /// One full analysis per move — the equivalence oracle and the perf
    /// baseline the incremental engine is measured against.
    FreshPerMove,
}

/// One worker's private evaluation state: an incremental session plus
/// the per-gate energy cache it keeps aligned with the session's
/// dirty-set reports.
struct Replica<'a> {
    session: AnalysisSession<'a>,
    gate_energy: Vec<f64>,
    /// Set when a caught panic may have left the session mid-update; the
    /// next evaluation rebuilds the replica from scratch before
    /// measuring anything.
    wrecked: bool,
}

impl<'a> Replica<'a> {
    fn new(mut session: AnalysisSession<'a>, energy_model: &EnergyModel) -> Self {
        let circuit = session.circuit();
        let mut gate_energy = vec![0.0f64; circuit.node_count()];
        for id in circuit.gates() {
            gate_energy[id.index()] = replica_gate_energy(&mut session, id, energy_model);
        }
        Replica {
            session,
            gate_energy,
            wrecked: false,
        }
    }

    /// Moves the session to `cells` and measures it; mirrors
    /// [`evaluate`]'s arithmetic bit for bit.
    ///
    /// A poisoned or panic-wrecked replica heals itself first with a
    /// full rebuild at the incoming candidate — bitwise identical to the
    /// incremental path by the session's fidelity guarantee, so one
    /// failed candidate never taints later ones.
    fn evaluate(
        &mut self,
        cells: CircuitCells,
        energy_model: &EnergyModel,
        weights: &CostWeights,
        baseline: &CostBreakdown,
    ) -> Result<Candidate, EvalError> {
        ser_netlist::failpoint!(
            "sertopt::replica_evaluate",
            return Err(EvalError::FaultInjected("sertopt::replica_evaluate"))
        );
        if self.wrecked || self.session.is_poisoned() {
            self.session.recover_with(cells.clone())?;
            self.refresh_all_energy(energy_model);
            self.wrecked = false;
        }
        let stats = self.session.try_set_cells(&cells)?;
        for &i in &stats.energy_dirty {
            let id = NodeId::new(i as usize);
            self.gate_energy[i as usize] = replica_gate_energy(&mut self.session, id, energy_model);
        }
        let circuit = self.session.circuit();
        let mut energy = 0.0;
        for id in circuit.gates() {
            energy += self.gate_energy[id.index()];
        }
        let mut breakdown = CostBreakdown {
            unreliability: self.session.unreliability(),
            delay: self.session.critical_delay(),
            energy,
            area: cells.total_area(),
            cost: f64::NAN,
        };
        breakdown.cost = weights.cost(&breakdown, baseline);
        Ok(Candidate {
            cost: breakdown.cost,
            breakdown,
            cells,
        })
    }

    fn refresh_all_energy(&mut self, energy_model: &EnergyModel) {
        let circuit = self.session.circuit();
        for id in circuit.gates() {
            self.gate_energy[id.index()] = replica_gate_energy(&mut self.session, id, energy_model);
        }
    }
}

impl Clone for Replica<'_> {
    fn clone(&self) -> Self {
        Replica {
            session: self.session.clone(),
            gate_energy: self.gate_energy.clone(),
            wrecked: self.wrecked,
        }
    }
}

/// [`gate_energy`](crate::cost::gate_energy)'s exact arithmetic, fed
/// from the session's cached cell/load/static-probability state.
fn replica_gate_energy(
    session: &mut AnalysisSession<'_>,
    id: NodeId,
    energy_model: &EnergyModel,
) -> f64 {
    let prob = session.static_probs()[id.index()];
    let activity = 2.0 * prob * (1.0 - prob);
    let (cell, load) = session.cell_and_load(id);
    activity * cell.dynamic_energy(load) + cell.static_energy(energy_model.clock_period)
}

/// The delay-assignment-variation problem (paper §4), ready for repeated
/// evaluation: holds the one-time artifacts (`P_ij`, tension space,
/// match plan, baseline delays/metrics, analysis sessions) and hands out
/// costs for potential vectors.
pub struct DelayProblem<'a> {
    /// The circuit under optimization.
    pub circuit: &'a Circuit,
    /// The zero-overhead move space.
    pub tension: TensionSpace,
    /// Logic level of every node (for the slack-move family).
    pub levels: Vec<usize>,
    /// Baseline slack of every node at the baseline critical delay.
    pub slacks: Vec<f64>,
    /// Circuit depth (number of slack coefficients − 1).
    pub depth: usize,
    /// Realized per-node delays of the baseline assignment.
    pub base_delays: Vec<f64>,
    /// The baseline assignment itself.
    pub baseline_cells: CircuitCells,
    /// Baseline metrics (`cost` = the weight sum by construction).
    pub baseline: CostBreakdown,
    /// Eq. 5 weights.
    pub weights: CostWeights,
    /// Matching configuration.
    pub matching: MatchingConfig,
    /// ASERTA settings used in every evaluation.
    pub aserta_cfg: AsertaConfig,
    /// Energy constants.
    pub energy: EnergyModel,
    /// Number of cost evaluations performed so far.
    pub evaluations: usize,
    /// How candidates are measured.
    pub strategy: EvalStrategy,
    /// Worker threads for [`DelayProblem::evaluate_batch`] (0 = the
    /// `SER_SIM_THREADS`/available-parallelism default). Results are
    /// identical for every value.
    pub threads: usize,
    plan: MatchPlan,
    replicas: Vec<Replica<'a>>,
    fresh_lib: Library,
    fresh_pij: SensitizationMatrix,
}

impl<'a> DelayProblem<'a> {
    /// Prepares the problem from a baseline assignment: estimates
    /// `P_ij`, measures the baseline, compiles the match plan and the
    /// tension space, and boots the first analysis session.
    ///
    /// `library` is used (and warmed) during construction only; the
    /// problem owns private copies afterwards, so evaluations never
    /// contend on the caller's library.
    pub fn new(
        circuit: &'a Circuit,
        library: &mut Library,
        baseline_cells: CircuitCells,
        weights: CostWeights,
        matching: MatchingConfig,
        aserta_cfg: AsertaConfig,
        energy: EnergyModel,
    ) -> Self {
        // Warm every variant evaluations can touch: the allowed grid
        // (bulk, parallel) plus the baseline's own (possibly off-grid)
        // cells.
        let spec = matching.allowed.library_spec(circuit);
        library.characterize_spec(&spec, 0);
        for id in circuit.gates() {
            let Some(p) = baseline_cells.get(id) else {
                panic!("invariant: baseline assignment covers every gate")
            };
            library.get_or_characterize(p);
        }

        let pij =
            sensitization_probabilities(circuit, aserta_cfg.sensitization_vectors, aserta_cfg.seed);
        let tv = timing_view(
            circuit,
            &baseline_cells,
            library,
            matching.load_model,
            aserta_cfg.pi_ramp,
        );
        let mut baseline = evaluate(
            circuit,
            &baseline_cells,
            library,
            &pij,
            &aserta_cfg,
            &energy,
            &weights,
            None,
        );
        baseline.cost = weights.unreliability + weights.delay + weights.energy + weights.area;
        let plan = MatchPlan::build(circuit, library, &matching, Some(&baseline_cells));
        let tension = TensionSpace::build(circuit);
        let levels = topo::levels_from_inputs(circuit);
        let depth = levels.iter().copied().max().unwrap_or(0);
        let timing = sta::analyze(circuit, &tv.delays, baseline.delay);
        let slacks = timing
            .slack
            .iter()
            .map(|&s| if s.is_finite() { s.max(0.0) } else { 0.0 })
            .collect();

        let session = match AnalysisSession::builder(
            circuit,
            baseline_cells.clone(),
            library.clone(),
            aserta_cfg.clone(),
        )
        .pij(pij.clone())
        .build()
        {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        };
        let replicas = vec![Replica::new(session, &energy)];

        DelayProblem {
            circuit,
            tension,
            levels,
            slacks,
            depth,
            base_delays: tv.delays,
            baseline_cells,
            baseline,
            weights,
            matching,
            aserta_cfg,
            energy,
            evaluations: 0,
            strategy: EvalStrategy::default(),
            threads: 0,
            plan,
            replicas,
            fresh_lib: library.clone(),
            fresh_pij: pij,
        }
    }

    /// The shared sensitization matrix behind every evaluation.
    pub fn pij(&self) -> &SensitizationMatrix {
        self.replicas[0].session.pij()
    }

    /// Dimension of the search space: tension coordinates plus one slack
    /// coefficient per logic level.
    pub fn dim(&self) -> usize {
        self.tension.dim() + self.depth + 1
    }

    /// The per-node delay targets of a search point.
    ///
    /// The first [`TensionSpace::dim`] entries of `phi` are tension
    /// potentials (seconds); the remaining `depth + 1` entries are
    /// dimensionless level coefficients `κ_l`, scaled by `initial step`
    /// units of 10 ps per unit — a gate at level `l` is slowed by
    /// `κ_l · slack / depth` (clamped so targets stay positive).
    fn targets_for(&self, phi: &[f64]) -> Vec<f64> {
        let t_dim = self.tension.dim();
        let delta = self.tension.delta(self.circuit, &phi[..t_dim]);
        let kappa = &phi[t_dim..];
        let slack_scale = 1.0 / (self.depth.max(1) as f64);
        // κ is carried in seconds like the tension part (optimizers are
        // unit-agnostic); normalize to a dimensionless coefficient per
        // 10 ps so default step sizes explore κ ≈ ±2.
        self.circuit
            .node_ids()
            .map(|id| {
                let i = id.index();
                let k = kappa[self.levels[i]] / 10.0e-12;
                let slack_move = k * self.slacks[i] * slack_scale;
                (self.base_delays[i] + delta[i] + slack_move).max(1.0e-12)
            })
            .collect()
    }

    /// Evaluates a search point: tension deltas plus slack-bounded level
    /// slowdowns → clamped delay targets → matched cells → Eq. 5 cost
    /// against the baseline.
    ///
    /// # Panics
    ///
    /// Panics on any condition [`DelayProblem::try_evaluate_phi`]
    /// reports as an error.
    pub fn evaluate_phi(&mut self, phi: &[f64]) -> Candidate {
        match self.try_evaluate_phi(phi) {
            Ok(c) => c,
            Err(e) => panic!("evaluate_phi: {e}"),
        }
    }

    /// Fallible [`DelayProblem::evaluate_phi`]: matching and measurement
    /// failures (including injected faults) surface as a typed
    /// [`EvalError`]. A failure never corrupts later evaluations — the
    /// replica heals itself with a full rebuild on its next call.
    pub fn try_evaluate_phi(&mut self, phi: &[f64]) -> Result<Candidate, EvalError> {
        self.evaluations += 1;
        let targets = self.targets_for(phi);
        let cells = self.plan.try_realize(self.circuit, &targets)?;
        match self.strategy {
            EvalStrategy::Incremental => {
                self.replicas[0].evaluate(cells, &self.energy, &self.weights, &self.baseline)
            }
            EvalStrategy::FreshPerMove => Ok(self.evaluate_fresh(cells)),
        }
    }

    /// Evaluates independent search points as one batch, returning one
    /// `Result` per candidate in input order. Under
    /// [`EvalStrategy::Incremental`] the batch is spread over up to
    /// [`DelayProblem::threads`] session replicas; the result is
    /// **identical for every thread count** (each evaluation is exact
    /// regardless of its replica's prior state, and a failure is a
    /// property of the candidate, not of the replica it landed on). The
    /// fresh strategy evaluates sequentially.
    ///
    /// Panics inside a replica evaluation are caught per candidate at
    /// the [`std::thread::scope`] boundary and surface as
    /// [`EvalError::Panicked`]; the replica rebuilds itself before its
    /// next evaluation, so no panic escapes the scope and no later
    /// candidate sees the wreckage.
    pub fn evaluate_batch(&mut self, phis: &[Vec<f64>]) -> Vec<Result<Candidate, EvalError>> {
        let workers = match self.strategy {
            EvalStrategy::FreshPerMove => 1,
            EvalStrategy::Incremental => {
                let t = if self.threads == 0 {
                    simulation_threads()
                } else {
                    self.threads
                };
                t.min(phis.len()).max(1)
            }
        };
        if workers <= 1 {
            return phis.iter().map(|phi| self.try_evaluate_phi(phi)).collect();
        }
        self.evaluations += phis.len();
        while self.replicas.len() < workers {
            let clone = self.replicas[0].clone();
            self.replicas.push(clone);
        }
        // Realize all candidates up front (cheap scans over the plan),
        // then measure them on per-worker sessions in round-robin strides.
        let jobs: Vec<Result<CircuitCells, EvalError>> = phis
            .iter()
            .map(|phi| self.plan.try_realize(self.circuit, &self.targets_for(phi)))
            .collect();
        let energy = &self.energy;
        let weights = &self.weights;
        let baseline = &self.baseline;
        let n_jobs = jobs.len();
        let mut tagged: Vec<(usize, Result<Candidate, EvalError>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .replicas
                .iter_mut()
                .take(workers)
                .enumerate()
                .map(|(w, replica)| {
                    let jobs = &jobs;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for (idx, cells) in jobs.iter().enumerate().skip(w).step_by(workers) {
                            let result = match cells {
                                Ok(cells) => {
                                    let attempt = std::panic::catch_unwind(
                                        std::panic::AssertUnwindSafe(|| {
                                            replica.evaluate(
                                                cells.clone(),
                                                energy,
                                                weights,
                                                baseline,
                                            )
                                        }),
                                    );
                                    match attempt {
                                        Ok(r) => r,
                                        Err(_) => {
                                            replica.wrecked = true;
                                            Err(EvalError::Panicked {
                                                context: "replica evaluation",
                                            })
                                        }
                                    }
                                }
                                Err(e) => Err(e.clone()),
                            };
                            out.push((idx, result));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .flat_map(|(w, h)| match h.join() {
                    Ok(out) => out,
                    // Backstop: a panic outside the per-candidate
                    // catch (none is known) loses the worker's
                    // stride; report each of its candidates failed.
                    Err(_) => (w..n_jobs)
                        .step_by(workers)
                        .map(|idx| {
                            (
                                idx,
                                Err(EvalError::Panicked {
                                    context: "evaluation worker",
                                }),
                            )
                        })
                        .collect(),
                })
                .collect()
        });
        tagged.sort_by_key(|&(idx, _)| idx);
        tagged.into_iter().map(|(_, c)| c).collect()
    }

    /// The fresh measurement: one cold-start analysis session over the
    /// private library per move — kept as the oracle and perf baseline.
    fn evaluate_fresh(&mut self, cells: CircuitCells) -> Candidate {
        let breakdown = evaluate(
            self.circuit,
            &cells,
            &mut self.fresh_lib,
            &self.fresh_pij,
            &self.aserta_cfg,
            &self.energy,
            &self.weights,
            Some(&self.baseline),
        );
        Candidate {
            cost: breakdown.cost,
            breakdown,
            cells,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allowed::AllowedParams;
    use ser_cells::CharGrids;
    use ser_netlist::generate;
    use ser_spice::Technology;

    fn problem_for_c17(lib: &mut Library) -> DelayProblem<'static> {
        // Leak a circuit for the 'a lifetime of the test.
        let circuit: &'static ser_netlist::Circuit = Box::leak(Box::new(generate::c17()));
        let baseline = CircuitCells::nominal(circuit);
        let mut cfg = AsertaConfig::fast();
        cfg.sensitization_vectors = 512;
        DelayProblem::new(
            circuit,
            lib,
            baseline,
            CostWeights::default(),
            MatchingConfig::new(AllowedParams::tiny()),
            cfg,
            EnergyModel::default(),
        )
    }

    #[test]
    fn zero_phi_costs_near_baseline() {
        let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
        let mut p = problem_for_c17(&mut lib);
        let c = p.evaluate_phi(&vec![0.0; p.dim()]);
        // Matching at the baseline's own delays lands near the baseline
        // cost (the quantized library may differ slightly).
        let expect = p.baseline.cost;
        assert!(
            (c.cost - expect).abs() / expect < 0.35,
            "cost {} vs baseline {}",
            c.cost,
            expect
        );
        assert_eq!(p.evaluations, 1);
    }

    #[test]
    fn dim_counts_tension_plus_levels() {
        let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
        let p = problem_for_c17(&mut lib);
        // c17: one free tension class + (depth 3 + 1) level coefficients.
        assert_eq!(p.tension.dim(), 1, "c17 has one free class");
        assert_eq!(p.dim(), 1 + 3 + 1);
    }

    #[test]
    fn slack_moves_trade_delay_for_cost_terms() {
        let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
        let mut p = problem_for_c17(&mut lib);
        // Slow every level by its slack share: delay may rise, the
        // evaluation must stay finite and well-formed.
        let mut phi = vec![0.0; p.dim()];
        for slack in phi.iter_mut().skip(p.tension.dim()) {
            *slack = 10.0e-12; // κ = 1
        }
        let c = p.evaluate_phi(&phi);
        assert!(c.cost.is_finite());
        assert!(c.breakdown.delay > 0.0);
    }

    #[test]
    fn strategies_agree_bitwise() {
        let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
        let mut inc = problem_for_c17(&mut lib);
        let mut fresh = problem_for_c17(&mut lib);
        fresh.strategy = EvalStrategy::FreshPerMove;
        let dim = inc.dim();
        for step in 0..5 {
            let phi: Vec<f64> = (0..dim)
                .map(|k| 8.0e-12 * (((k + step) % 3) as f64 - 1.0))
                .collect();
            let a = inc.evaluate_phi(&phi);
            let b = fresh.evaluate_phi(&phi);
            assert_eq!(a.cost, b.cost, "step {step}");
            assert_eq!(a.breakdown.unreliability, b.breakdown.unreliability);
            assert_eq!(a.breakdown.delay, b.breakdown.delay);
            assert_eq!(a.breakdown.energy, b.breakdown.energy);
            assert_eq!(a.breakdown.area, b.breakdown.area);
            assert_eq!(a.cells, b.cells);
        }
    }

    #[test]
    fn batch_matches_sequential_for_any_thread_count() {
        let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
        let mut p = problem_for_c17(&mut lib);
        let dim = p.dim();
        let phis: Vec<Vec<f64>> = (0..7)
            .map(|s| {
                (0..dim)
                    .map(|k| 6.0e-12 * (((k * 3 + s) % 5) as f64 - 2.0))
                    .collect()
            })
            .collect();
        let sequential: Vec<f64> = phis.iter().map(|phi| p.evaluate_phi(phi).cost).collect();
        for threads in [1usize, 2, 5] {
            p.threads = threads;
            let batch = p.evaluate_batch(&phis);
            let costs: Vec<f64> = batch
                .into_iter()
                .map(|c| c.expect("no faults injected").cost)
                .collect();
            assert_eq!(costs, sequential, "{threads} threads");
        }
    }

    #[test]
    fn wrong_length_targets_are_a_typed_error() {
        let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
        let p = problem_for_c17(&mut lib);
        let plan = MatchPlan::build(p.circuit, &mut lib, &p.matching, Some(&p.baseline_cells));
        let err = plan.try_realize(p.circuit, &[1.0e-12]).unwrap_err();
        assert!(matches!(err, crate::error::EvalError::Match { .. }));
        let err = plan
            .try_realize(p.circuit, &vec![f64::NAN; p.circuit.node_count()])
            .unwrap_err();
        assert!(matches!(err, crate::error::EvalError::Match { .. }));
    }

    /// An injected fault fails exactly the candidate it hits; every
    /// other candidate of the batch — including later ones measured on
    /// the same replica — is bitwise identical to a fault-free run.
    #[test]
    #[cfg(feature = "fail-points")]
    fn injected_batch_fault_is_contained_to_one_candidate() {
        use ser_netlist::failpoint::{self, FailAction};

        let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
        let mut p = problem_for_c17(&mut lib);
        p.threads = 1;
        let dim = p.dim();
        let phis: Vec<Vec<f64>> = (0..5)
            .map(|s| {
                (0..dim)
                    .map(|k| 6.0e-12 * (((k * 3 + s) % 5) as f64 - 2.0))
                    .collect()
            })
            .collect();
        let clean: Vec<f64> = p
            .evaluate_batch(&phis)
            .into_iter()
            .map(|c| c.expect("no faults armed").cost)
            .collect();

        let _guard = failpoint::scenario();
        failpoint::set_times("sertopt::replica_evaluate", FailAction::Error, 1);
        let faulted = p.evaluate_batch(&phis);
        assert_eq!(failpoint::hits("sertopt::replica_evaluate"), 1);
        assert!(matches!(
            faulted[0],
            Err(crate::error::EvalError::FaultInjected(
                "sertopt::replica_evaluate"
            ))
        ));
        for (i, got) in faulted.iter().enumerate().skip(1) {
            let got = got.as_ref().expect("only the first candidate faults");
            assert_eq!(got.cost, clean[i], "candidate {i}");
        }
    }
}
