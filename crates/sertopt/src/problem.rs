//! The optimization problem object shared by all four algorithms: a
//! search point → delay targets → matched cells → Eq. 5 cost.
//!
//! The search space has two move families, mirroring what the paper's
//! Table 1 actually exhibits:
//!
//! 1. **tension moves** — exact nullspace-of-`T` deltas: no PI→PO path
//!    delay changes at all (the zero-overhead guarantee);
//! 2. **slack moves** — per-logic-level slowdown coefficients, each gate
//!    bounded by its own baseline slack divided by the circuit depth, so
//!    shared slack is never over-committed by more than the coefficient
//!    scale. These are the moves behind the paper's 1.03–1.23× delay
//!    ratios, and the `W2·T/T₀` cost term polices them.

use aserta::{timing_view, AsertaConfig, CircuitCells};
use ser_cells::Library;
use ser_logicsim::sensitize::sensitization_probabilities;
use ser_logicsim::SensitizationMatrix;
use ser_netlist::{topo, Circuit};

use crate::cost::{evaluate, CostBreakdown, CostWeights, EnergyModel};
use crate::matching::{match_delays, MatchingConfig};
use crate::nullspace::TensionSpace;
use crate::sta;

/// One fully-evaluated candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Eq. 5 cost (lower is better).
    pub cost: f64,
    /// The metric breakdown.
    pub breakdown: CostBreakdown,
    /// The realized assignment.
    pub cells: CircuitCells,
}

/// The delay-assignment-variation problem (paper §4), ready for repeated
/// evaluation: holds the one-time artifacts (`P_ij`, tension space,
/// baseline delays/metrics) and hands out costs for potential vectors.
pub struct DelayProblem<'a> {
    /// The circuit under optimization.
    pub circuit: &'a Circuit,
    /// The (growing) characterized library.
    pub library: &'a mut Library,
    /// Sensitization matrix — logic-only, computed once.
    pub pij: SensitizationMatrix,
    /// The zero-overhead move space.
    pub tension: TensionSpace,
    /// Logic level of every node (for the slack-move family).
    pub levels: Vec<usize>,
    /// Baseline slack of every node at the baseline critical delay.
    pub slacks: Vec<f64>,
    /// Circuit depth (number of slack coefficients − 1).
    pub depth: usize,
    /// Realized per-node delays of the baseline assignment.
    pub base_delays: Vec<f64>,
    /// The baseline assignment itself.
    pub baseline_cells: CircuitCells,
    /// Baseline metrics (`cost` = the weight sum by construction).
    pub baseline: CostBreakdown,
    /// Eq. 5 weights.
    pub weights: CostWeights,
    /// Matching configuration.
    pub matching: MatchingConfig,
    /// ASERTA settings used in every evaluation.
    pub aserta_cfg: AsertaConfig,
    /// Energy constants.
    pub energy: EnergyModel,
    /// Number of cost evaluations performed so far.
    pub evaluations: usize,
}

impl<'a> DelayProblem<'a> {
    /// Prepares the problem from a baseline assignment: estimates
    /// `P_ij`, measures the baseline, builds the tension space.
    pub fn new(
        circuit: &'a Circuit,
        library: &'a mut Library,
        baseline_cells: CircuitCells,
        weights: CostWeights,
        matching: MatchingConfig,
        aserta_cfg: AsertaConfig,
        energy: EnergyModel,
    ) -> Self {
        let pij =
            sensitization_probabilities(circuit, aserta_cfg.sensitization_vectors, aserta_cfg.seed);
        let tv = timing_view(
            circuit,
            &baseline_cells,
            library,
            matching.load_model,
            aserta_cfg.pi_ramp,
        );
        let mut baseline = evaluate(
            circuit,
            &baseline_cells,
            library,
            &pij,
            &aserta_cfg,
            &energy,
            &weights,
            None,
        );
        baseline.cost = weights.unreliability + weights.delay + weights.energy + weights.area;
        let tension = TensionSpace::build(circuit);
        let levels = topo::levels_from_inputs(circuit);
        let depth = levels.iter().copied().max().unwrap_or(0);
        let timing = sta::analyze(circuit, &tv.delays, baseline.delay);
        let slacks = timing
            .slack
            .iter()
            .map(|&s| if s.is_finite() { s.max(0.0) } else { 0.0 })
            .collect();
        DelayProblem {
            circuit,
            library,
            pij,
            tension,
            levels,
            slacks,
            depth,
            base_delays: tv.delays,
            baseline_cells,
            baseline,
            weights,
            matching,
            aserta_cfg,
            energy,
            evaluations: 0,
        }
    }

    /// Dimension of the search space: tension coordinates plus one slack
    /// coefficient per logic level.
    pub fn dim(&self) -> usize {
        self.tension.dim() + self.depth + 1
    }

    /// Evaluates a search point: tension deltas plus slack-bounded level
    /// slowdowns → clamped delay targets → matched cells → Eq. 5 cost
    /// against the baseline.
    ///
    /// The first [`TensionSpace::dim`] entries of `phi` are tension
    /// potentials (seconds); the remaining `depth + 1` entries are
    /// dimensionless level coefficients `κ_l`, scaled by `initial step`
    /// units of 10 ps per unit — a gate at level `l` is slowed by
    /// `κ_l · slack / depth` (clamped so targets stay positive).
    pub fn evaluate_phi(&mut self, phi: &[f64]) -> Candidate {
        self.evaluations += 1;
        let t_dim = self.tension.dim();
        let delta = self.tension.delta(self.circuit, &phi[..t_dim]);
        let kappa = &phi[t_dim..];
        let slack_scale = 1.0 / (self.depth.max(1) as f64);
        // κ is carried in seconds like the tension part (optimizers are
        // unit-agnostic); normalize to a dimensionless coefficient per
        // 10 ps so default step sizes explore κ ≈ ±2.
        let targets: Vec<f64> = self
            .circuit
            .node_ids()
            .map(|id| {
                let i = id.index();
                let k = kappa[self.levels[i]] / 10.0e-12;
                let slack_move = k * self.slacks[i] * slack_scale;
                (self.base_delays[i] + delta[i] + slack_move).max(1.0e-12)
            })
            .collect();
        let cells = match_delays(
            self.circuit,
            &targets,
            self.library,
            &self.matching,
            Some(&self.baseline_cells),
        );
        let breakdown = evaluate(
            self.circuit,
            &cells,
            self.library,
            &self.pij,
            &self.aserta_cfg,
            &self.energy,
            &self.weights,
            Some(&self.baseline),
        );
        Candidate {
            cost: breakdown.cost,
            breakdown,
            cells,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allowed::AllowedParams;
    use ser_cells::CharGrids;
    use ser_netlist::generate;
    use ser_spice::Technology;

    fn problem_for_c17(lib: &mut Library) -> DelayProblem<'_> {
        // Leak a circuit for the 'a lifetime of the test.
        let circuit: &'static ser_netlist::Circuit = Box::leak(Box::new(generate::c17()));
        let baseline = CircuitCells::nominal(circuit);
        let mut cfg = AsertaConfig::fast();
        cfg.sensitization_vectors = 512;
        DelayProblem::new(
            circuit,
            lib,
            baseline,
            CostWeights::default(),
            MatchingConfig::new(AllowedParams::tiny()),
            cfg,
            EnergyModel::default(),
        )
    }

    #[test]
    fn zero_phi_costs_near_baseline() {
        let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
        let mut p = problem_for_c17(&mut lib);
        let c = p.evaluate_phi(&vec![0.0; p.dim()]);
        // Matching at the baseline's own delays lands near the baseline
        // cost (the quantized library may differ slightly).
        let expect = p.baseline.cost;
        assert!(
            (c.cost - expect).abs() / expect < 0.35,
            "cost {} vs baseline {}",
            c.cost,
            expect
        );
        assert_eq!(p.evaluations, 1);
    }

    #[test]
    fn dim_counts_tension_plus_levels() {
        let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
        let p = problem_for_c17(&mut lib);
        // c17: one free tension class + (depth 3 + 1) level coefficients.
        assert_eq!(p.tension.dim(), 1, "c17 has one free class");
        assert_eq!(p.dim(), 1 + 3 + 1);
    }

    #[test]
    fn slack_moves_trade_delay_for_cost_terms() {
        let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
        let mut p = problem_for_c17(&mut lib);
        // Slow every level by its slack share: delay may rise, the
        // evaluation must stay finite and well-formed.
        let mut phi = vec![0.0; p.dim()];
        for slack in phi.iter_mut().skip(p.tension.dim()) {
            *slack = 10.0e-12; // κ = 1
        }
        let c = p.evaluate_phi(&phi);
        assert!(c.cost.is_finite());
        assert!(c.breakdown.delay > 0.0);
    }
}
