use ser_cells::LibrarySpec;
use ser_netlist::Circuit;
use ser_spice::GateParams;
use serde::{Deserialize, Serialize};

/// The discrete parameter sets SERTOPT may assign — the paper's design
/// variables ("the values and numbers of VDDs and Vths to be used is a
/// design variable"; lengths 70–300 nm; max size bounded by the
/// baseline's).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllowedParams {
    /// Drive strengths (unit widths).
    pub sizes: Vec<f64>,
    /// Channel lengths, nanometres.
    pub lengths_nm: Vec<f64>,
    /// Supply voltages, volts.
    pub vdds: Vec<f64>,
    /// Threshold voltages, volts.
    pub vths: Vec<f64>,
}

impl AllowedParams {
    /// The paper's Table 1 configuration for dual-VDD/dual-Vth circuits
    /// (c432/c3540/c7552 row style): sizes 1–8, the five lengths, VDD
    /// {0.8, 1.0}, Vth {0.2, 0.3}.
    pub fn table1_dual() -> Self {
        AllowedParams {
            sizes: vec![1.0, 2.0, 4.0, 8.0],
            lengths_nm: vec![70.0, 100.0, 150.0, 250.0, 300.0],
            vdds: vec![0.8, 1.0],
            vths: vec![0.2, 0.3],
        }
    }

    /// The triple-VDD/triple-Vth configuration (c1908/c2670/c5315 rows):
    /// VDD {0.8, 1.0, 1.2}, Vth {0.1, 0.2, 0.3}.
    pub fn table1_triple() -> Self {
        AllowedParams {
            sizes: vec![1.0, 2.0, 4.0, 8.0],
            lengths_nm: vec![70.0, 100.0, 150.0, 250.0, 300.0],
            vdds: vec![0.8, 1.0, 1.2],
            vths: vec![0.1, 0.2, 0.3],
        }
    }

    /// Sizing-only optimization (the paper's fallback when multi-VDD/Vth
    /// is infeasible).
    pub fn sizing_only() -> Self {
        AllowedParams {
            sizes: vec![1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0],
            lengths_nm: vec![70.0],
            vdds: vec![1.0],
            vths: vec![0.2],
        }
    }

    /// A small grid for fast tests.
    pub fn tiny() -> Self {
        AllowedParams {
            sizes: vec![1.0, 2.0, 4.0],
            lengths_nm: vec![70.0, 150.0],
            vdds: vec![1.0],
            vths: vec![0.2],
        }
    }

    /// Whether a parameter point belongs to the allowed grid.
    pub fn contains(&self, p: &GateParams) -> bool {
        self.sizes.contains(&p.size)
            && self.lengths_nm.contains(&p.l_nm)
            && self.vdds.contains(&p.vdd)
            && self.vths.contains(&p.vth)
    }

    /// The characterization spec covering `circuit` under these
    /// parameters.
    pub fn library_spec(&self, circuit: &Circuit) -> LibrarySpec {
        LibrarySpec::for_circuit(
            circuit,
            self.sizes.clone(),
            self.lengths_nm.clone(),
            self.vdds.clone(),
            self.vths.clone(),
        )
    }

    /// Number of variants per gate template.
    pub fn variants_per_template(&self) -> usize {
        self.sizes.len() * self.lengths_nm.len() * self.vdds.len() * self.vths.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::GateKind;

    #[test]
    fn contains_checks_every_axis() {
        let a = AllowedParams::tiny();
        let ok = GateParams::new(GateKind::Nand, 2)
            .with_size(2.0)
            .with_length(150.0);
        let bad = ok.with_vdd(0.8);
        assert!(a.contains(&ok));
        assert!(!a.contains(&bad));
    }

    #[test]
    fn table1_profiles_match_paper() {
        let dual = AllowedParams::table1_dual();
        assert_eq!(dual.vdds, vec![0.8, 1.0]);
        assert_eq!(dual.vths, vec![0.2, 0.3]);
        assert_eq!(dual.lengths_nm.len(), 5);
        let triple = AllowedParams::table1_triple();
        assert_eq!(triple.vdds.len(), 3);
        assert_eq!(triple.vths.len(), 3);
    }

    #[test]
    fn variants_count() {
        assert_eq!(AllowedParams::tiny().variants_per_template(), 3 * 2);
    }
}
