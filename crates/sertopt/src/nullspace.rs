//! The nullspace of the topology matrix: delay moves that change no
//! PI→PO path delay.
//!
//! Two constructions:
//!
//! * [`exact_nullspace`] — Gaussian elimination over the explicit matrix
//!   (exponential paths: small circuits and validation only);
//! * [`TensionSpace`] — the scalable `O(V+E)` parameterization used for
//!   optimization: a potential `φ` on merged fan-in net classes (all
//!   fan-ins of one gate share a class; classes touching a PI or PO are
//!   pinned to 0) induces `Δd_gate = φ(out) − φ(in)`, which telescopes to
//!   zero along every PI→PO path. On small circuits the tension space is
//!   observed to span the exact nullspace (see the cross-validation
//!   tests); on large ones it is a sound (conservative) subspace.

use ser_netlist::{Circuit, NodeId};

use crate::topology::TopologyMatrix;

/// Basis of `{x : T·x = 0}` in gate-column coordinates, by row reduction.
///
/// Columns follow [`TopologyMatrix::gates`]. Empty result means the
/// matrix has full column rank (no zero-overhead freedom at all).
pub fn exact_nullspace(t: &TopologyMatrix) -> Vec<Vec<f64>> {
    let n_cols = t.gates.len();
    let mut rows: Vec<Vec<f64>> = t.rows().to_vec();
    let n_rows = rows.len();
    const EPS: f64 = 1e-9;

    let mut pivot_col_of_row: Vec<usize> = Vec::new();
    let mut pivot_cols: Vec<usize> = Vec::new();
    let mut r = 0usize;
    for c in 0..n_cols {
        // Find pivot.
        let mut best = r;
        let mut best_abs = 0.0;
        for (rr, row) in rows.iter().enumerate().take(n_rows).skip(r) {
            let a = row[c].abs();
            if a > best_abs {
                best_abs = a;
                best = rr;
            }
        }
        if best_abs < EPS {
            continue;
        }
        rows.swap(r, best);
        let piv = rows[r][c];
        for x in rows[r].iter_mut() {
            *x /= piv;
        }
        let pivot_row = rows[r].clone();
        for (rr, row) in rows.iter_mut().enumerate() {
            if rr != r && row[c].abs() > EPS {
                let f = row[c];
                for (x, &p) in row.iter_mut().zip(&pivot_row) {
                    *x -= f * p;
                }
            }
        }
        pivot_col_of_row.push(c);
        pivot_cols.push(c);
        r += 1;
        if r == n_rows {
            break;
        }
    }

    let free_cols: Vec<usize> = (0..n_cols).filter(|c| !pivot_cols.contains(c)).collect();
    free_cols
        .iter()
        .map(|&fc| {
            let mut v = vec![0.0; n_cols];
            v[fc] = 1.0;
            for (row_idx, &pc) in pivot_col_of_row.iter().enumerate() {
                v[pc] = -rows[row_idx][fc];
            }
            v
        })
        .collect()
}

/// The scalable nullspace parameterization (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct TensionSpace {
    /// Per node: compact class id.
    class_of_node: Vec<usize>,
    /// Per class: `Some(free coordinate)` or `None` if pinned to 0.
    free_index: Vec<Option<usize>>,
    n_free: usize,
}

impl TensionSpace {
    /// Builds the class structure for a circuit.
    pub fn build(circuit: &Circuit) -> Self {
        let n = circuit.node_count();
        // Union-find.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for id in circuit.gates() {
            let fanin = &circuit.node(id).fanin;
            let first = find(&mut parent, fanin[0].index());
            for f in &fanin[1..] {
                let r = find(&mut parent, f.index());
                parent[r] = first;
            }
        }
        // Compact class ids.
        let mut class_of_root = vec![usize::MAX; n];
        let mut class_of_node = vec![0usize; n];
        let mut n_classes = 0usize;
        for (i, class) in class_of_node.iter_mut().enumerate() {
            let r = find(&mut parent, i);
            if class_of_root[r] == usize::MAX {
                class_of_root[r] = n_classes;
                n_classes += 1;
            }
            *class = class_of_root[r];
        }
        // Pin classes containing PIs or POs.
        let mut pinned = vec![false; n_classes];
        for &pi in circuit.primary_inputs() {
            pinned[class_of_node[pi.index()]] = true;
        }
        for &po in circuit.primary_outputs() {
            pinned[class_of_node[po.index()]] = true;
        }
        let mut free_index = vec![None; n_classes];
        let mut n_free = 0usize;
        for (c, item) in free_index.iter_mut().enumerate() {
            if !pinned[c] {
                *item = Some(n_free);
                n_free += 1;
            }
        }
        TensionSpace {
            class_of_node,
            free_index,
            n_free,
        }
    }

    /// Dimension of the parameterized subspace (number of free classes).
    pub fn dim(&self) -> usize {
        self.n_free
    }

    /// The per-node delay deltas induced by a potential vector `phi`
    /// (length [`TensionSpace::dim`]); primary inputs get 0.
    ///
    /// # Panics
    ///
    /// Panics if `phi.len() != self.dim()`.
    pub fn delta(&self, circuit: &Circuit, phi: &[f64]) -> Vec<f64> {
        assert_eq!(phi.len(), self.n_free, "one potential per free class");
        let phi_of = |class: usize| -> f64 {
            match self.free_index[class] {
                Some(k) => phi[k],
                None => 0.0,
            }
        };
        let mut delta = vec![0.0f64; self.class_of_node.len()];
        for id in circuit.gates() {
            let out_class = self.class_of_node[id.index()];
            let in_class = self.class_of_node[circuit.node(id).fanin[0].index()];
            delta[id.index()] = phi_of(out_class) - phi_of(in_class);
        }
        delta
    }

    /// The class id of a node (mainly for diagnostics).
    pub fn class_of(&self, id: NodeId) -> usize {
        self.class_of_node[id.index()]
    }
}

/// Checks that `delta` changes no path delay by sampling `n_samples`
/// random PI→PO paths (deterministic in `seed`); returns the worst
/// absolute path-delay change observed.
pub fn max_path_delay_change(circuit: &Circuit, delta: &[f64], n_samples: usize, seed: u64) -> f64 {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let pis = circuit.primary_inputs();
    let mut worst = 0.0f64;
    for _ in 0..n_samples {
        // Random forward walk from a random PI; restart on dead ends
        // until a PO is reached (all our circuits have no dead ends from
        // PIs, but dangling nodes exist in principle).
        let mut at = pis[rng.random_range(0..pis.len())];
        let mut sum = 0.0f64;
        let mut steps = 0;
        loop {
            if circuit.is_primary_output(at)
                && (circuit.fanout(at).is_empty() || rng.random_bool(0.5))
            {
                worst = worst.max(sum.abs());
                break;
            }
            let fo = circuit.fanout(at);
            if fo.is_empty() {
                break; // dangling: not a PI→PO path, discard sample
            }
            at = fo[rng.random_range(0..fo.len())];
            sum += delta[at.index()];
            steps += 1;
            if steps > circuit.node_count() {
                unreachable!("acyclic circuits terminate");
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use ser_netlist::generate;

    #[test]
    fn c17_exact_nullity_is_one() {
        let c = generate::c17();
        let t = TopologyMatrix::build(&c, 100).unwrap();
        let basis = exact_nullspace(&t);
        assert_eq!(basis.len(), 1);
        // T·v = 0 for the basis vector.
        let pd = t.path_delays(&basis[0]);
        assert!(pd.iter().all(|&x| x.abs() < 1e-9), "{pd:?}");
    }

    #[test]
    fn c17_tension_dim_matches_exact() {
        let c = generate::c17();
        let ts = TensionSpace::build(&c);
        assert_eq!(ts.dim(), 1);
    }

    #[test]
    fn tension_deltas_are_in_exact_nullspace() {
        let c = generate::c17();
        let t = TopologyMatrix::build(&c, 100).unwrap();
        let ts = TensionSpace::build(&c);
        let phi = vec![3.5];
        let delta = ts.delta(&c, &phi);
        let pd = t.path_delays_from_nodes(&delta);
        assert!(pd.iter().all(|&x| x.abs() < 1e-9), "{pd:?}");
    }

    #[test]
    fn tension_preserves_paths_on_all_benchmarks() {
        for name in ["c432", "c499", "c880"] {
            let c = generate::iscas85(name).unwrap();
            let ts = TensionSpace::build(&c);
            assert!(ts.dim() > 0, "{name} has no zero-overhead freedom?");
            let mut rng = StdRng::seed_from_u64(99);
            let phi: Vec<f64> = (0..ts.dim())
                .map(|_| rng.random_range(-10.0..10.0))
                .collect();
            let delta = ts.delta(&c, &phi);
            let worst = max_path_delay_change(&c, &delta, 2000, 7);
            assert!(worst < 1e-9, "{name}: worst change {worst}");
        }
    }

    #[test]
    fn exact_matches_topology_on_random_small_circuit() {
        let spec = ser_netlist::generate::LayeredSpec::new("small", 4, 2, 12);
        let c = ser_netlist::generate::layered(&spec);
        if let Some(t) = TopologyMatrix::build(&c, 10_000) {
            let basis = exact_nullspace(&t);
            for v in &basis {
                let pd = t.path_delays(v);
                assert!(pd.iter().all(|&x| x.abs() < 1e-7));
            }
            // The tension space embeds into the exact nullspace.
            let ts = TensionSpace::build(&c);
            assert!(ts.dim() <= basis.len() + 1, "tension dim sanity");
        }
    }

    #[test]
    fn zero_phi_means_zero_delta() {
        let c = generate::c17();
        let ts = TensionSpace::build(&c);
        let delta = ts.delta(&c, &vec![0.0; ts.dim()]);
        assert!(delta.iter().all(|&d| d == 0.0));
    }
}
