//! The path-topology matrix `T` of the paper's §4: one row per PI→PO
//! path, one column per gate, `T[p][i] = 1` iff gate `i` lies on path
//! `p`. Delay vectors `d` map to path delays `D = T·d`; SERTOPT's moves
//! must satisfy `T·Δ = 0`.
//!
//! Path counts explode exponentially, so the explicit matrix exists for
//! small circuits and for validating the scalable tension-space
//! parameterization ([`crate::nullspace`]).

use ser_netlist::paths::{enumerate, Path};
use ser_netlist::{Circuit, NodeId};

/// An explicit topology matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyMatrix {
    /// Gate column order (all non-input nodes, storage order).
    pub gates: Vec<NodeId>,
    /// The enumerated paths (node sequences including the PI).
    pub paths: Vec<Path>,
    /// Row-major 0/1 entries: `rows[p][c]` for path `p`, gate column `c`.
    rows: Vec<Vec<f64>>,
}

impl TopologyMatrix {
    /// Enumerates all paths and builds `T`; `None` if the circuit has
    /// more than `path_limit` paths.
    pub fn build(circuit: &Circuit, path_limit: usize) -> Option<Self> {
        let paths = enumerate(circuit, path_limit)?;
        let gates: Vec<NodeId> = circuit.gates().collect();
        let col_of = {
            let mut m = vec![usize::MAX; circuit.node_count()];
            for (c, &g) in gates.iter().enumerate() {
                m[g.index()] = c;
            }
            m
        };
        let rows = paths
            .iter()
            .map(|p| {
                let mut row = vec![0.0; gates.len()];
                for &node in p {
                    let c = col_of[node.index()];
                    if c != usize::MAX {
                        // A gate visited twice on one path cannot happen
                        // in a DAG; multi-pin hops revisit the *successor*
                        // not the gate itself.
                        row[c] = 1.0;
                    }
                }
                row
            })
            .collect();
        Some(TopologyMatrix { gates, paths, rows })
    }

    /// Number of paths (rows).
    pub fn n_paths(&self) -> usize {
        self.rows.len()
    }

    /// The matrix rows (one per path, columns follow
    /// [`TopologyMatrix::gates`]).
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// `T·d` for a per-gate delay vector in column order.
    pub fn path_delays(&self, gate_delays: &[f64]) -> Vec<f64> {
        assert_eq!(gate_delays.len(), self.gates.len(), "one delay per column");
        self.rows
            .iter()
            .map(|row| row.iter().zip(gate_delays).map(|(&t, &d)| t * d).sum())
            .collect()
    }

    /// `T·d` taking a full per-node delay vector (primary inputs get 0
    /// columns implicitly).
    pub fn path_delays_from_nodes(&self, node_delays: &[f64]) -> Vec<f64> {
        let gate_delays: Vec<f64> = self.gates.iter().map(|g| node_delays[g.index()]).collect();
        self.path_delays(&gate_delays)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::generate;

    #[test]
    fn c17_matrix_shape() {
        let c = generate::c17();
        let t = TopologyMatrix::build(&c, 100).unwrap();
        assert_eq!(t.n_paths(), 11);
        assert_eq!(t.gates.len(), 6);
        // Every path touches between 2 and 3 gates in c17.
        for row in t.rows() {
            let touched: f64 = row.iter().sum();
            assert!((2.0..=3.0).contains(&touched), "{touched}");
        }
    }

    #[test]
    fn limit_returns_none() {
        let c = generate::c17();
        assert!(TopologyMatrix::build(&c, 3).is_none());
    }

    #[test]
    fn unit_delays_give_path_lengths() {
        let c = generate::c17();
        let t = TopologyMatrix::build(&c, 100).unwrap();
        let d = vec![1.0; t.gates.len()];
        let pd = t.path_delays(&d);
        for (p, &delay) in t.paths.iter().zip(&pd) {
            // Path includes the PI node, which has no column.
            assert_eq!(delay, (p.len() - 1) as f64, "{p:?}");
        }
    }

    #[test]
    fn node_indexed_wrapper_agrees() {
        let c = generate::c17();
        let t = TopologyMatrix::build(&c, 100).unwrap();
        let mut node_delays = vec![0.0; c.node_count()];
        for (k, g) in t.gates.iter().enumerate() {
            node_delays[g.index()] = (k + 1) as f64;
        }
        let gate_delays: Vec<f64> = (1..=t.gates.len()).map(|x| x as f64).collect();
        assert_eq!(
            t.path_delays_from_nodes(&node_delays),
            t.path_delays(&gate_delays)
        );
    }
}
