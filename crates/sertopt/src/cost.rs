//! The Eq. 5 cost function:
//! `C = W1·U/U₀ + W2·T/T₀ + W3·E/E₀ + W4·A/A₀`.

use aserta::{analyze, AsertaConfig, CircuitCells};
use ser_cells::Library;
use ser_logicsim::SensitizationMatrix;
use ser_netlist::Circuit;
use serde::{Deserialize, Serialize};

/// The four weights of Eq. 5. "A designer can easily change the
/// optimization constraints by changing the ratio of the weights."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostWeights {
    /// `W1` — unreliability.
    pub unreliability: f64,
    /// `W2` — circuit delay (guards library-quantization drift; the
    /// nullspace moves preserve path delays by construction).
    pub delay: f64,
    /// `W3` — total energy (dynamic + static).
    pub energy: f64,
    /// `W4` — area.
    pub area: f64,
}

impl Default for CostWeights {
    /// Unreliability-driven defaults in the spirit of Table 1: delay is
    /// strongly guarded, energy/area mildly so.
    fn default() -> Self {
        CostWeights {
            unreliability: 1.0,
            delay: 1.0,
            energy: 0.10,
            area: 0.05,
        }
    }
}

/// Energy model constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Clock period, seconds (static energy per cycle = leakage power ×
    /// period; dynamic per cycle = activity × C·V²).
    pub clock_period: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            clock_period: 1.0e-9,
        }
    }
}

/// Absolute metrics of one assignment plus its normalized cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// ASERTA unreliability `U` (Eq. 4).
    pub unreliability: f64,
    /// Critical-path delay `T`, seconds.
    pub delay: f64,
    /// Per-cycle energy `E`, joules (dynamic + static).
    pub energy: f64,
    /// Abstract area `A`.
    pub area: f64,
    /// The Eq. 5 cost against the baseline used at evaluation time.
    pub cost: f64,
}

/// Evaluates the absolute metrics of an assignment (one ASERTA run plus
/// energy/area accounting); `baseline = None` yields `cost = NaN` until
/// normalized.
#[allow(clippy::too_many_arguments)] // mirrors Eq. 5's parameter list
pub fn evaluate(
    circuit: &Circuit,
    cells: &CircuitCells,
    library: &mut Library,
    pij: &SensitizationMatrix,
    aserta_cfg: &AsertaConfig,
    energy_model: &EnergyModel,
    weights: &CostWeights,
    baseline: Option<&CostBreakdown>,
) -> CostBreakdown {
    let report = analyze(circuit, cells, library, pij, aserta_cfg);
    let delay = report.timing.critical_path_delay(circuit);

    let mut energy = 0.0;
    for id in circuit.gates() {
        energy += gate_energy(
            cells,
            library,
            id,
            report.static_probs[id.index()],
            report.timing.loads[id.index()],
            energy_model,
        );
    }
    let area = cells.total_area();

    let mut breakdown = CostBreakdown {
        unreliability: report.unreliability,
        delay,
        energy,
        area,
        cost: f64::NAN,
    };
    if let Some(base) = baseline {
        breakdown.cost = weights.cost(&breakdown, base);
    }
    breakdown
}

impl CostWeights {
    /// The Eq. 5 normalized cost of `m` against `base`.
    pub fn cost(&self, m: &CostBreakdown, base: &CostBreakdown) -> f64 {
        self.unreliability * safe_ratio(m.unreliability, base.unreliability)
            + self.delay * safe_ratio(m.delay, base.delay)
            + self.energy * safe_ratio(m.energy, base.energy)
            + self.area * safe_ratio(m.area, base.area)
    }
}

/// Per-cycle energy of one gate (activity-weighted dynamic plus static
/// leakage over the clock period) — the unit the incremental per-gate
/// energy cache refreshes, summed by [`evaluate`] in gate order so both
/// paths agree bitwise.
pub fn gate_energy(
    cells: &CircuitCells,
    library: &mut Library,
    id: ser_netlist::NodeId,
    static_prob: f64,
    load: f64,
    energy_model: &EnergyModel,
) -> f64 {
    let Some(p) = cells.get(id) else {
        panic!("gate_energy: node {id} carries no cell parameters")
    };
    let cell = library.get_or_characterize(p);
    let activity = 2.0 * static_prob * (1.0 - static_prob);
    activity * cell.dynamic_energy(load) + cell.static_energy(energy_model.clock_period)
}

#[inline]
fn safe_ratio(x: f64, base: f64) -> f64 {
    if base > 0.0 {
        x / base
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aserta::CircuitCells;
    use ser_cells::CharGrids;
    use ser_logicsim::sensitize::sensitization_probabilities;
    use ser_netlist::generate;
    use ser_spice::Technology;

    #[test]
    fn baseline_cost_is_weight_sum() {
        let c = generate::c17();
        let cells = CircuitCells::nominal(&c);
        let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
        let pij = sensitization_probabilities(&c, 512, 1);
        let cfg = AsertaConfig::fast();
        let w = CostWeights::default();
        let em = EnergyModel::default();
        let base = evaluate(&c, &cells, &mut lib, &pij, &cfg, &em, &w, None);
        let again = evaluate(&c, &cells, &mut lib, &pij, &cfg, &em, &w, Some(&base));
        let expect = w.unreliability + w.delay + w.energy + w.area;
        assert!((again.cost - expect).abs() < 1e-9, "{}", again.cost);
    }

    #[test]
    fn metrics_are_positive() {
        let c = generate::c17();
        let cells = CircuitCells::nominal(&c);
        let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
        let pij = sensitization_probabilities(&c, 512, 1);
        let m = evaluate(
            &c,
            &cells,
            &mut lib,
            &pij,
            &AsertaConfig::fast(),
            &EnergyModel::default(),
            &CostWeights::default(),
            None,
        );
        assert!(m.unreliability > 0.0);
        assert!(m.delay > 0.0);
        assert!(m.energy > 0.0);
        assert!(m.area > 0.0);
        assert!(m.cost.is_nan());
    }

    #[test]
    fn lower_vth_raises_energy() {
        let c = generate::c17();
        let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
        let pij = sensitization_probabilities(&c, 512, 1);
        let cfg = AsertaConfig::fast();
        let em = EnergyModel::default();
        let w = CostWeights::default();
        let nominal = CircuitCells::nominal(&c);
        let leaky = CircuitCells::from_fn(&c, |id| {
            let n = c.node(id);
            ser_spice::GateParams::new(n.kind, n.fanin.len()).with_vth(0.1)
        });
        let e_nom = evaluate(&c, &nominal, &mut lib, &pij, &cfg, &em, &w, None).energy;
        let e_leaky = evaluate(&c, &leaky, &mut lib, &pij, &cfg, &em, &w, None).energy;
        assert!(e_leaky > e_nom, "{e_leaky:e} vs {e_nom:e}");
    }
}
