//! The packaged result of one SERTOPT run — everything a Table 1 row
//! needs.

use aserta::{CircuitCells, Interrupted};

use crate::cost::CostBreakdown;

/// How the search loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Termination {
    /// The search ran its full course (iteration budget exhausted or the
    /// step converged below its floor).
    #[default]
    Completed,
    /// The execution budget ([`Deadline`](aserta::Deadline)) interrupted
    /// the search at the recorded checkpoint; the [`Outcome`] carries the
    /// best assignment found up to that point, re-validated by the same
    /// never-regress guard as a completed run.
    Interrupted(Interrupted),
}

impl Termination {
    /// Whether the search was cut short by its execution budget.
    pub fn was_interrupted(&self) -> bool {
        matches!(self, Termination::Interrupted(_))
    }
}

/// Outcome of [`optimize_circuit`](crate::optimize_circuit).
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The circuit's name.
    pub circuit_name: String,
    /// The speed-sized baseline assignment.
    pub baseline_cells: CircuitCells,
    /// The optimized assignment.
    pub optimized_cells: CircuitCells,
    /// Baseline metrics.
    pub baseline: CostBreakdown,
    /// Optimized metrics.
    pub optimized: CostBreakdown,
    /// Best-cost trace over the search.
    pub history: Vec<f64>,
    /// Cost evaluations spent.
    pub evaluations: usize,
    /// The winning tension-space point.
    pub best_phi: Vec<f64>,
    /// Whether the search completed or its execution budget cut it
    /// short (in which case the fields above are the best-so-far state).
    pub termination: Termination,
}

impl Outcome {
    /// Fractional unreliability decrease `(U₀ − U)/U₀` — Table 1's
    /// headline column (0.47 = 47%).
    pub fn unreliability_decrease(&self) -> f64 {
        if self.baseline.unreliability <= 0.0 {
            return 0.0;
        }
        (self.baseline.unreliability - self.optimized.unreliability) / self.baseline.unreliability
    }

    /// Optimized/baseline area ratio (Table 1 column 4).
    pub fn area_ratio(&self) -> f64 {
        ratio(self.optimized.area, self.baseline.area)
    }

    /// Optimized/baseline energy ratio (column 5).
    pub fn energy_ratio(&self) -> f64 {
        ratio(self.optimized.energy, self.baseline.energy)
    }

    /// Optimized/baseline delay ratio (column 6; ≈1 by the nullspace
    /// construction, up to library quantization).
    pub fn delay_ratio(&self) -> f64 {
        ratio(self.optimized.delay, self.baseline.delay)
    }

    /// A Table 1-style text row.
    pub fn table1_row(&self) -> String {
        format!(
            "{:<8} {:>6.2}X {:>7.2}X {:>6.2}X {:>8.0}%",
            self.circuit_name,
            self.area_ratio(),
            self.energy_ratio(),
            self.delay_ratio(),
            100.0 * self.unreliability_decrease()
        )
    }
}

fn ratio(x: f64, base: f64) -> f64 {
    if base > 0.0 {
        x / base
    } else {
        f64::NAN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(u0: f64, u1: f64) -> Outcome {
        let base = CostBreakdown {
            unreliability: u0,
            delay: 1.0e-9,
            energy: 2.0e-12,
            area: 100.0,
            cost: 2.0,
        };
        let opt = CostBreakdown {
            unreliability: u1,
            delay: 1.05e-9,
            energy: 3.0e-12,
            area: 150.0,
            cost: 1.5,
        };
        Outcome {
            circuit_name: "c432".into(),
            baseline_cells: CircuitCells::nominal(&ser_netlist::generate::c17()),
            optimized_cells: CircuitCells::nominal(&ser_netlist::generate::c17()),
            baseline: base,
            optimized: opt,
            history: vec![2.0, 1.5],
            evaluations: 10,
            best_phi: vec![],
            termination: Termination::default(),
        }
    }

    #[test]
    fn ratios() {
        let o = dummy(10.0, 6.0);
        assert!((o.unreliability_decrease() - 0.4).abs() < 1e-12);
        assert!((o.area_ratio() - 1.5).abs() < 1e-12);
        assert!((o.energy_ratio() - 1.5).abs() < 1e-12);
        assert!((o.delay_ratio() - 1.05).abs() < 1e-12);
    }

    #[test]
    fn row_formats() {
        let o = dummy(10.0, 6.0);
        let row = o.table1_row();
        assert!(row.contains("c432"));
        assert!(row.contains("40%"));
    }
}
