//! Simulated annealing in tension space — one of the alternatives the
//! paper explicitly blesses for minimizing Eq. 5.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use aserta::{Deadline, Interrupted};

use crate::problem::DelayProblem;

/// Runs `moves` Metropolis steps with a geometric cooling schedule.
/// Each move perturbs a random small subset of coordinates by a Gaussian
/// step scaled to the current temperature. A move whose evaluation fails
/// is rejected deterministically (cooling continues, history keeps its
/// shape).
///
/// `deadline` is checked once per move (stage `"anneal::move"`); an
/// exhausted budget stops the schedule and returns the best-so-far point
/// with the typed [`Interrupted`] alongside.
pub fn run(
    problem: &mut DelayProblem<'_>,
    moves: usize,
    initial_step: f64,
    seed: u64,
    deadline: &Deadline,
) -> (Vec<f64>, Vec<f64>, Option<Interrupted>) {
    let dim = problem.dim();
    if dim == 0 {
        return (Vec::new(), vec![start_cost(problem, &[])], None);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut phi = vec![0.0f64; dim];
    let mut cur_cost = start_cost(problem, &phi);
    let mut best_phi = phi.clone();
    let mut best_cost = cur_cost;
    let mut history = vec![best_cost];

    // Temperature in cost units: start around 5% of the baseline cost.
    let t_start = (cur_cost * 0.05).max(1e-6);
    let t_end = t_start * 1e-3;
    let cooling = if moves > 1 {
        (t_end / t_start).powf(1.0 / (moves - 1) as f64)
    } else {
        1.0
    };
    let mut temp = t_start;
    let mut interrupted = None;

    for _ in 0..moves {
        if let Err(i) = deadline.check("anneal::move") {
            interrupted = Some(i);
            break;
        }
        let k_moves = 1 + rng.random_range(0..3.min(dim));
        let mut trial = phi.clone();
        for _ in 0..k_moves {
            let k = rng.random_range(0..dim);
            // Box–Muller-ish: sum of uniforms is Gaussian enough here.
            let g: f64 = (0..4).map(|_| rng.random::<f64>() - 0.5).sum::<f64>();
            trial[k] += g * initial_step * (temp / t_start).max(0.1);
        }
        let Ok(c) = problem.try_evaluate_phi(&trial).map(|c| c.cost) else {
            history.push(best_cost);
            temp *= cooling;
            continue;
        };
        let accept = c < cur_cost || {
            let p = ((cur_cost - c) / temp).exp();
            rng.random::<f64>() < p
        };
        if accept {
            cur_cost = c;
            phi = trial;
            if c < best_cost {
                best_cost = c;
                best_phi = phi.clone();
            }
        }
        history.push(best_cost);
        temp *= cooling;
    }
    (best_phi, history, interrupted)
}

/// The cost of the search's starting point; a failed start reads as
/// infinitely bad so any surviving candidate improves on it.
fn start_cost(problem: &mut DelayProblem<'_>, phi: &[f64]) -> f64 {
    problem
        .try_evaluate_phi(phi)
        .map(|c| c.cost)
        .unwrap_or(f64::INFINITY)
}
