//! Projected-gradient search in tension space — the reproduction's
//! SQP-flavoured default (DESIGN.md substitution 4).
//!
//! For small dimensions the gradient is estimated by forward differences
//! along every coordinate; beyond [`FD_DIM_LIMIT`] it switches to
//! averaged simultaneous-perturbation (SPSA) estimates, which cost two
//! evaluations per sample regardless of dimension. Steps follow the
//! negative gradient with backtracking line search and an adaptive trust
//! scale.
//!
//! The discrete cell library makes the cost **piecewise constant** in φ:
//! perturbations smaller than the library's delay quantization change no
//! cell choice and read a zero gradient. Probes therefore use the full
//! current step scale, and a zero gradient triggers compass-style random
//! probing before the step is allowed to shrink.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use aserta::{Deadline, Interrupted};

use crate::problem::DelayProblem;

/// Coordinate count above which SPSA replaces full finite differences.
pub const FD_DIM_LIMIT: usize = 24;

/// Random probes tried when the gradient reads zero (plateau escape).
const PLATEAU_PROBES: usize = 6;

/// Runs the search; returns `(best_phi, cost_history, interrupted)`.
///
/// `deadline` is checked once per iteration (stage `"sqp::iteration"`);
/// an exhausted budget stops the search and returns the best-so-far
/// point with the typed [`Interrupted`] alongside.
pub fn run(
    problem: &mut DelayProblem<'_>,
    iterations: usize,
    initial_step: f64,
    seed: u64,
    deadline: &Deadline,
) -> (Vec<f64>, Vec<f64>, Option<Interrupted>) {
    let dim = problem.dim();
    if dim == 0 {
        return (Vec::new(), vec![start_cost(problem, &[])], None);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut phi = vec![0.0f64; dim];
    let mut best_phi = phi.clone();
    let mut best_cost = start_cost(problem, &phi);
    let mut history = vec![best_cost];
    let mut step = initial_step;
    let mut interrupted = None;

    for _ in 0..iterations {
        if let Err(i) = deadline.check("sqp::iteration") {
            interrupted = Some(i);
            break;
        }
        // Probe at the full step scale so quantization boundaries are
        // crossed (see module docs).
        let h = step;
        let grad = if dim <= FD_DIM_LIMIT {
            forward_difference(problem, &phi, best_cost, h)
        } else {
            spsa(problem, &phi, h, 4, &mut rng)
        };
        let norm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();

        let mut improved = false;
        if norm > 1e-30 {
            // Backtracking line search along −grad.
            let mut trial_step = step * 2.0;
            for _ in 0..5 {
                let trial: Vec<f64> = phi
                    .iter()
                    .zip(&grad)
                    .map(|(&p, &g)| p - trial_step * g / norm)
                    .collect();
                // A failed trial counts as non-improving; backtracking
                // continues deterministically.
                let Ok(c) = problem.try_evaluate_phi(&trial).map(|c| c.cost) else {
                    trial_step *= 0.5;
                    continue;
                };
                if c < best_cost {
                    best_cost = c;
                    phi = trial.clone();
                    best_phi = trial;
                    improved = true;
                    break;
                }
                trial_step *= 0.5;
            }
        }
        if !improved {
            // Plateau (or failed line search): compass-style random
            // probing at the current scale. Probes are independent, so
            // they evaluate as one batch; the first improvement in draw
            // order wins (mirroring the sequential scan).
            let trials: Vec<Vec<f64>> = (0..PLATEAU_PROBES)
                .map(|_| {
                    phi.iter()
                        .map(|&p| p + step * (rng.random::<f64>() * 2.0 - 1.0))
                        .collect()
                })
                .collect();
            let costs = problem.evaluate_batch(&trials);
            // Failed probes are skipped; the first surviving improvement
            // in draw order wins (mirroring the sequential scan).
            if let Some((trial, c)) = trials
                .into_iter()
                .zip(costs)
                .filter_map(|(t, c)| c.ok().map(|c| (t, c.cost)))
                .find(|(_, c)| *c < best_cost)
            {
                best_cost = c;
                phi = trial.clone();
                best_phi = trial;
                improved = true;
            }
        }

        if improved {
            step = (step * 1.4).min(initial_step * 8.0);
        } else {
            step *= 0.5;
            if step < initial_step * 0.05 {
                break;
            }
        }
        history.push(best_cost);
    }
    (best_phi, history, interrupted)
}

/// The cost of the search's starting point; a failed start reads as
/// infinitely bad so any surviving candidate improves on it.
fn start_cost(problem: &mut DelayProblem<'_>, phi: &[f64]) -> f64 {
    problem
        .try_evaluate_phi(phi)
        .map(|c| c.cost)
        .unwrap_or(f64::INFINITY)
}

fn forward_difference(problem: &mut DelayProblem<'_>, phi: &[f64], f0: f64, h: f64) -> Vec<f64> {
    // One independent probe per coordinate — a single thread-batched
    // evaluation round. A failed probe reads a zero slope along its
    // coordinate (deterministically skipped).
    let trials: Vec<Vec<f64>> = (0..phi.len())
        .map(|k| {
            let mut p = phi.to_vec();
            p[k] += h;
            p
        })
        .collect();
    problem
        .evaluate_batch(&trials)
        .iter()
        .map(|c| match c {
            Ok(c) => (c.cost - f0) / h,
            Err(_) => 0.0,
        })
        .collect()
}

/// Averaged simultaneous-perturbation gradient: each sample perturbs all
/// coordinates by ±h at once and uses the two-sided cost difference.
fn spsa(
    problem: &mut DelayProblem<'_>,
    phi: &[f64],
    h: f64,
    samples: usize,
    rng: &mut StdRng,
) -> Vec<f64> {
    let dim = phi.len();
    let mut grad = vec![0.0; dim];
    // Draw all sign vectors first (one RNG stream regardless of
    // batching), then evaluate the 2·samples probes as one batch.
    let all_signs: Vec<Vec<f64>> = (0..samples)
        .map(|_| {
            (0..dim)
                .map(|_| if rng.random_bool(0.5) { 1.0 } else { -1.0 })
                .collect()
        })
        .collect();
    let mut trials: Vec<Vec<f64>> = Vec::with_capacity(2 * samples);
    for signs in &all_signs {
        trials.push(phi.iter().zip(signs).map(|(&p, &s)| p + h * s).collect());
        trials.push(phi.iter().zip(signs).map(|(&p, &s)| p - h * s).collect());
    }
    let costs = problem.evaluate_batch(&trials);
    for (i, signs) in all_signs.iter().enumerate() {
        // A sample with a failed probe contributes nothing (skipped
        // deterministically).
        let (Ok(fp), Ok(fm)) = (&costs[2 * i], &costs[2 * i + 1]) else {
            continue;
        };
        let d = (fp.cost - fm.cost) / (2.0 * h);
        for (g, &s) in grad.iter_mut().zip(signs) {
            *g += d * s / samples as f64;
        }
    }
    grad
}
