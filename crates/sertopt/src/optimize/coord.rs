//! Cyclic coordinate descent in tension space.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use aserta::{Deadline, Interrupted};

use crate::problem::DelayProblem;

/// Runs `iterations` sweeps; each sweep tries ±step on every coordinate
/// (shuffled order) and keeps improvements greedily. The step halves
/// after a sweep without improvement. A trial whose evaluation fails is
/// skipped deterministically (it counts as non-improving).
///
/// `deadline` is checked once per sweep (stage `"coord::sweep"`); an
/// exhausted budget stops the search and returns the best-so-far point
/// with the typed [`Interrupted`] alongside.
pub fn run(
    problem: &mut DelayProblem<'_>,
    iterations: usize,
    initial_step: f64,
    seed: u64,
    deadline: &Deadline,
) -> (Vec<f64>, Vec<f64>, Option<Interrupted>) {
    let dim = problem.dim();
    if dim == 0 {
        return (Vec::new(), vec![start_cost(problem, &[])], None);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut phi = vec![0.0f64; dim];
    let mut best_cost = start_cost(problem, &phi);
    let mut history = vec![best_cost];
    let mut step = initial_step;
    let mut order: Vec<usize> = (0..dim).collect();
    let mut interrupted = None;

    for _ in 0..iterations {
        if let Err(i) = deadline.check("coord::sweep") {
            interrupted = Some(i);
            break;
        }
        order.shuffle(&mut rng);
        let mut improved = false;
        for &k in &order {
            for dir in [1.0, -1.0] {
                let mut trial = phi.clone();
                trial[k] += dir * step;
                let Ok(c) = problem.try_evaluate_phi(&trial).map(|c| c.cost) else {
                    continue;
                };
                if c < best_cost {
                    best_cost = c;
                    phi = trial;
                    improved = true;
                    break;
                }
            }
        }
        history.push(best_cost);
        if !improved {
            step *= 0.5;
            if step < initial_step * 1e-3 {
                break;
            }
        }
    }
    (phi, history, interrupted)
}

/// The cost of the search's starting point; a failed start reads as
/// infinitely bad so any surviving candidate improves on it.
fn start_cost(problem: &mut DelayProblem<'_>, phi: &[f64]) -> f64 {
    problem
        .try_evaluate_phi(phi)
        .map(|c| c.cost)
        .unwrap_or(f64::INFINITY)
}
