//! The optimization drivers. The paper minimizes Eq. 5 with Sequential
//! Quadratic Programming and notes that "simulated annealing, genetic
//! algorithms or some other optimization algorithm can also be used" —
//! all four are provided:
//!
//! * [`sqp`] — the default: projected-gradient descent in tension space
//!   with finite-difference/simultaneous-perturbation gradients and
//!   backtracking line search (the SQP-flavoured substitute documented in
//!   DESIGN.md);
//! * [`coord`] — cyclic coordinate descent;
//! * [`anneal`] — simulated annealing;
//! * [`genetic`] — a (μ+λ)-style genetic algorithm.

pub mod anneal;
pub mod coord;
pub mod genetic;
pub mod sqp;

use aserta::{AsertaConfig, Deadline};
use ser_cells::Library;
use ser_netlist::Circuit;
use serde::{Deserialize, Serialize};

use crate::allowed::AllowedParams;
use crate::baseline::size_for_speed;
use crate::cost::{CostWeights, EnergyModel};
use crate::matching::MatchingConfig;
use crate::problem::{DelayProblem, EvalStrategy};
use crate::result::{Outcome, Termination};

/// Which search algorithm drives the Eq. 5 minimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Algorithm {
    /// Projected-gradient ("SQP-flavoured") — the paper's default.
    #[default]
    Sqp,
    /// Cyclic coordinate descent.
    CoordinateDescent,
    /// Simulated annealing (paper-blessed alternative).
    Anneal,
    /// Genetic algorithm (paper-blessed alternative).
    Genetic,
}

/// Full optimizer configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// Search algorithm.
    pub algorithm: Algorithm,
    /// Eq. 5 weights.
    pub weights: CostWeights,
    /// The discrete cell-parameter grid.
    pub allowed: AllowedParams,
    /// Search iterations (algorithm-specific granularity).
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
    /// Initial move scale in tension space, seconds.
    pub initial_step: f64,
    /// ASERTA settings for cost evaluations.
    pub aserta: AsertaConfig,
    /// Energy constants.
    pub energy: EnergyModel,
    /// Sizes available to the speed-sizing baseline pass.
    pub baseline_sizes: Vec<f64>,
    /// Stage effort targeted by the baseline pass.
    pub baseline_effort: f64,
    /// How candidate assignments are measured: the incremental
    /// [`aserta::AnalysisSession`] engine (default) or one fresh analysis
    /// per move (the oracle/perf baseline). Both produce identical
    /// outcomes.
    pub eval: EvalStrategy,
    /// Worker threads for batched independent evaluations (0 = the
    /// `SER_SIM_THREADS`/available-parallelism default). Outcomes are
    /// identical for every value.
    pub threads: usize,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            algorithm: Algorithm::Sqp,
            weights: CostWeights::default(),
            allowed: AllowedParams::table1_dual(),
            iterations: 30,
            seed: 0x5E127,
            initial_step: 20.0e-12,
            aserta: AsertaConfig::default(),
            energy: EnergyModel::default(),
            baseline_sizes: vec![1.0, 2.0, 4.0, 8.0],
            baseline_effort: 2.0,
            eval: EvalStrategy::default(),
            threads: 0,
        }
    }
}

impl OptimizerConfig {
    /// A fast profile for tests and demos.
    pub fn fast() -> Self {
        OptimizerConfig {
            iterations: 8,
            allowed: AllowedParams::tiny(),
            aserta: AsertaConfig::fast(),
            ..OptimizerConfig::default()
        }
    }
}

/// One optimization request: the serializable [`OptimizerConfig`] plus
/// the live execution budget — the single options struct shared by
/// library ([`optimize`]), CLI and daemon callers.
///
/// The split matters: [`OptimizeRequest::config`] is pure data
/// (algorithm, weights, grids, seeds — serde round-trippable), while
/// [`OptimizeRequest::budget`] holds live wall-clock/cancellation state
/// ([`Deadline`]) that only exists per call.
///
/// ```
/// use sertopt::{Algorithm, OptimizeRequest, OptimizerConfig};
///
/// let req = OptimizeRequest::new(OptimizerConfig::fast()).strategy(Algorithm::CoordinateDescent);
/// assert_eq!(req.config.algorithm, Algorithm::CoordinateDescent);
/// ```
#[derive(Debug, Clone)]
pub struct OptimizeRequest {
    /// Full optimizer configuration; `config.algorithm` is the search
    /// strategy.
    pub config: OptimizerConfig,
    /// Cooperative execution budget ([`Deadline::none`] = unbudgeted).
    pub budget: Deadline,
}

impl Default for OptimizeRequest {
    fn default() -> Self {
        OptimizeRequest::new(OptimizerConfig::default())
    }
}

impl OptimizeRequest {
    /// A request over `config` with no execution budget.
    pub fn new(config: OptimizerConfig) -> Self {
        OptimizeRequest {
            config,
            budget: Deadline::none(),
        }
    }

    /// Picks the search strategy (sets `config.algorithm`).
    #[must_use]
    pub fn strategy(mut self, algorithm: Algorithm) -> Self {
        self.config.algorithm = algorithm;
        self
    }

    /// Installs a cooperative execution budget for this request.
    #[must_use]
    pub fn budget(mut self, budget: Deadline) -> Self {
        self.budget = budget;
        self
    }
}

/// End-to-end SERTOPT: speed-size the baseline (the paper's Design
/// Compiler step), build the problem, run the configured search, and
/// package the outcome.
///
/// # Panics
///
/// Panics on any [`AnalysisError`](aserta::AnalysisError) from the
/// initial session construction (e.g. an unusable
/// `request.config.aserta`); the inputs are caller-controlled
/// configuration, not untrusted data.
#[deprecated(since = "0.2.0", note = "use sertopt::optimize(.., &OptimizeRequest)")]
pub fn optimize_circuit(
    circuit: &Circuit,
    library: &mut Library,
    cfg: &OptimizerConfig,
) -> Outcome {
    optimize(circuit, library, &OptimizeRequest::new(cfg.clone()))
}

/// [`optimize`] under a cooperative execution budget, with the config
/// and deadline as separate arguments.
#[deprecated(
    since = "0.2.0",
    note = "use sertopt::optimize(.., &OptimizeRequest::new(..).budget(..))"
)]
pub fn optimize_circuit_with_budget(
    circuit: &Circuit,
    library: &mut Library,
    cfg: &OptimizerConfig,
    deadline: &Deadline,
) -> Outcome {
    optimize(
        circuit,
        library,
        &OptimizeRequest {
            config: cfg.clone(),
            budget: deadline.clone(),
        },
    )
}

/// End-to-end SERTOPT over one [`OptimizeRequest`]: speed-size the
/// baseline (the paper's Design Compiler step), build the problem, run
/// the configured search under the request's budget, and package the
/// outcome.
///
/// The budget (wall clock and/or [`CancelToken`](aserta::CancelToken))
/// is checked at every search-loop boundary — per SQP iteration,
/// coordinate-descent sweep, annealing move and genetic generation. When
/// it expires the search stops where it stands and the returned
/// [`Outcome`] carries the best assignment found so far with
/// [`Outcome::termination`] set to [`Termination::Interrupted`]; the
/// result is always consistent because the same best-vs-zero-vs-baseline
/// re-validation runs as for a completed search (a bounded amount of
/// post-budget work, at worst two cost evaluations). The baseline
/// speed-sizing pass and the initial `P_ij` estimate run before the
/// first checkpoint, so an already-expired budget still yields a usable
/// baseline-quality outcome rather than an error.
pub fn optimize(circuit: &Circuit, library: &mut Library, request: &OptimizeRequest) -> Outcome {
    let cfg = &request.config;
    let deadline = &request.budget;
    let matching = MatchingConfig::new(cfg.allowed.clone());
    let baseline_cells = size_for_speed(
        circuit,
        library,
        &cfg.baseline_sizes,
        matching.load_model,
        cfg.baseline_effort,
    );
    let mut problem = DelayProblem::new(
        circuit,
        library,
        baseline_cells.clone(),
        cfg.weights,
        matching,
        cfg.aserta.clone(),
        cfg.energy,
    );
    problem.strategy = cfg.eval;
    problem.threads = cfg.threads;
    let (best_phi, history, interrupted) = match cfg.algorithm {
        Algorithm::Sqp => sqp::run(
            &mut problem,
            cfg.iterations,
            cfg.initial_step,
            cfg.seed,
            deadline,
        ),
        Algorithm::CoordinateDescent => coord::run(
            &mut problem,
            cfg.iterations,
            cfg.initial_step,
            cfg.seed,
            deadline,
        ),
        Algorithm::Anneal => anneal::run(
            &mut problem,
            cfg.iterations * 10,
            cfg.initial_step,
            cfg.seed,
            deadline,
        ),
        Algorithm::Genetic => genetic::run(
            &mut problem,
            cfg.iterations,
            cfg.initial_step,
            cfg.seed,
            deadline,
        ),
    };
    // Guards against library-quantization drift: prefer the re-matched
    // zero move if it beats the search result, and fall back to the
    // untouched baseline when nothing beats it (the paper's c499 row —
    // "the unreliability of c499 could not be reduced" — is exactly this
    // outcome). Evaluation failures (possible only under injected faults
    // or degenerate configurations) drop the failed point from the
    // comparison instead of aborting.
    let zero_phi = vec![0.0; problem.dim()];
    let best = problem.try_evaluate_phi(&best_phi).ok();
    let zero = problem.try_evaluate_phi(&zero_phi).ok();
    let picked = match (best, zero) {
        (Some(b), Some(z)) => Some(if z.cost < b.cost {
            (z, zero_phi.clone())
        } else {
            (b, best_phi)
        }),
        (Some(b), None) => Some((b, best_phi)),
        (None, Some(z)) => Some((z, zero_phi.clone())),
        (None, None) => None,
    };
    let (mut final_candidate, mut final_phi) = match picked {
        Some(p) => p,
        None => (
            crate::problem::Candidate {
                cost: problem.baseline.cost,
                breakdown: problem.baseline,
                cells: baseline_cells.clone(),
            },
            zero_phi,
        ),
    };
    // partial_cmp: a NaN cost must also fall back to the baseline.
    if final_candidate.cost.partial_cmp(&problem.baseline.cost) != Some(std::cmp::Ordering::Less) {
        final_candidate = crate::problem::Candidate {
            cost: problem.baseline.cost,
            breakdown: problem.baseline,
            cells: baseline_cells.clone(),
        };
        final_phi = vec![0.0; problem.dim()];
    }
    Outcome {
        circuit_name: circuit.name().to_owned(),
        baseline_cells,
        optimized_cells: final_candidate.cells,
        baseline: problem.baseline,
        optimized: final_candidate.breakdown,
        history,
        evaluations: problem.evaluations,
        best_phi: final_phi,
        termination: interrupted.map_or(Termination::Completed, Termination::Interrupted),
    }
}
