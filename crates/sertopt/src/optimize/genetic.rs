//! A (μ+λ) genetic algorithm in tension space — the paper's other
//! blessed alternative.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::problem::DelayProblem;

const POPULATION: usize = 10;
const TOURNAMENT: usize = 3;
const MUTATION_RATE: f64 = 0.3;

/// Runs `generations` of tournament selection, blend crossover and
/// Gaussian mutation, with one-elite preservation. The zero vector (the
/// baseline point) seeds the population, so the result never regresses.
pub fn run(
    problem: &mut DelayProblem<'_>,
    generations: usize,
    initial_step: f64,
    seed: u64,
) -> (Vec<f64>, Vec<f64>) {
    let dim = problem.dim();
    if dim == 0 {
        return (Vec::new(), vec![problem.evaluate_phi(&[]).cost]);
    }
    let mut rng = StdRng::seed_from_u64(seed);

    let mut population: Vec<(Vec<f64>, f64)> = Vec::with_capacity(POPULATION);
    // Seed with the baseline point plus random spread.
    let zero = vec![0.0f64; dim];
    let zero_cost = problem.evaluate_phi(&zero).cost;
    population.push((zero, zero_cost));
    while population.len() < POPULATION {
        let genes: Vec<f64> = (0..dim)
            .map(|_| (rng.random::<f64>() - 0.5) * 2.0 * initial_step)
            .collect();
        let cost = problem.evaluate_phi(&genes).cost;
        population.push((genes, cost));
    }

    let mut history = vec![best_of(&population).1];
    for _ in 0..generations {
        let mut next: Vec<(Vec<f64>, f64)> = vec![best_of(&population).clone()];
        while next.len() < POPULATION {
            let a = tournament(&population, &mut rng);
            let b = tournament(&population, &mut rng);
            // Blend crossover.
            let alpha: f64 = rng.random::<f64>();
            let mut child: Vec<f64> = a
                .iter()
                .zip(b)
                .map(|(&x, &y)| alpha * x + (1.0 - alpha) * y)
                .collect();
            // Gaussian mutation.
            for gene in child.iter_mut() {
                if rng.random::<f64>() < MUTATION_RATE {
                    let g: f64 = (0..4).map(|_| rng.random::<f64>() - 0.5).sum::<f64>();
                    *gene += g * initial_step;
                }
            }
            let cost = problem.evaluate_phi(&child).cost;
            next.push((child, cost));
        }
        population = next;
        history.push(best_of(&population).1);
    }
    let (genes, _) = best_of(&population).clone();
    (genes, history)
}

fn best_of(population: &[(Vec<f64>, f64)]) -> &(Vec<f64>, f64) {
    population
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("costs are finite"))
        .expect("population is non-empty")
}

fn tournament<'p>(population: &'p [(Vec<f64>, f64)], rng: &mut StdRng) -> &'p [f64] {
    let mut best: Option<&(Vec<f64>, f64)> = None;
    for _ in 0..TOURNAMENT {
        let cand = &population[rng.random_range(0..population.len())];
        if best.map(|b| cand.1 < b.1).unwrap_or(true) {
            best = Some(cand);
        }
    }
    &best.expect("tournament saw a candidate").0
}
