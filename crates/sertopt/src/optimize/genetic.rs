//! A (μ+λ) genetic algorithm in tension space — the paper's other
//! blessed alternative.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use aserta::{Deadline, Interrupted};

use crate::problem::DelayProblem;

const POPULATION: usize = 10;
const TOURNAMENT: usize = 3;
const MUTATION_RATE: f64 = 0.3;

/// Runs `generations` of tournament selection, blend crossover and
/// Gaussian mutation, with one-elite preservation. The zero vector (the
/// baseline point) seeds the population, so the result never regresses.
///
/// Selection and variation only ever read the *previous* generation, so
/// each generation's offspring are independent — they are bred first
/// (one sequential RNG stream) and then evaluated as one thread-batched
/// call, which keeps the outcome identical for every worker count.
/// Candidates whose evaluation fails are penalized with an infinite
/// cost, so selection deterministically breeds past them and a fault
/// never aborts the search.
///
/// `deadline` is checked once per generation (stage
/// `"genetic::generation"`); an exhausted budget stops the breeding and
/// returns the best genome bred so far with the typed [`Interrupted`]
/// alongside.
pub fn run(
    problem: &mut DelayProblem<'_>,
    generations: usize,
    initial_step: f64,
    seed: u64,
    deadline: &Deadline,
) -> (Vec<f64>, Vec<f64>, Option<Interrupted>) {
    let dim = problem.dim();
    if dim == 0 {
        let cost = problem
            .try_evaluate_phi(&[])
            .map(|c| c.cost)
            .unwrap_or(f64::INFINITY);
        return (Vec::new(), vec![cost], None);
    }
    let mut rng = StdRng::seed_from_u64(seed);

    // Seed with the baseline point plus random spread; evaluate the
    // whole founding population in one batch.
    let mut genomes: Vec<Vec<f64>> = vec![vec![0.0f64; dim]];
    while genomes.len() < POPULATION {
        genomes.push(
            (0..dim)
                .map(|_| (rng.random::<f64>() - 0.5) * 2.0 * initial_step)
                .collect(),
        );
    }
    let costs = problem.evaluate_batch(&genomes);
    let mut population: Vec<(Vec<f64>, f64)> = genomes
        .into_iter()
        .zip(costs)
        .map(|(g, c)| (g, penalized_cost(c)))
        .collect();

    let mut history = vec![best_of(&population).1];
    let mut interrupted = None;
    for _ in 0..generations {
        if let Err(i) = deadline.check("genetic::generation") {
            interrupted = Some(i);
            break;
        }
        // Breed the full brood against the current generation…
        let mut brood: Vec<Vec<f64>> = Vec::with_capacity(POPULATION - 1);
        while brood.len() + 1 < POPULATION {
            let a = tournament(&population, &mut rng);
            let b = tournament(&population, &mut rng);
            // Blend crossover.
            let alpha: f64 = rng.random::<f64>();
            let mut child: Vec<f64> = a
                .iter()
                .zip(b)
                .map(|(&x, &y)| alpha * x + (1.0 - alpha) * y)
                .collect();
            // Gaussian mutation.
            for gene in child.iter_mut() {
                if rng.random::<f64>() < MUTATION_RATE {
                    let g: f64 = (0..4).map(|_| rng.random::<f64>() - 0.5).sum::<f64>();
                    *gene += g * initial_step;
                }
            }
            brood.push(child);
        }
        // …then score it in one batch, with the elite carried over.
        let costs = problem.evaluate_batch(&brood);
        let mut next: Vec<(Vec<f64>, f64)> = vec![best_of(&population).clone()];
        next.extend(
            brood
                .into_iter()
                .zip(costs)
                .map(|(g, c)| (g, penalized_cost(c))),
        );
        population = next;
        history.push(best_of(&population).1);
    }
    let (genes, _) = best_of(&population).clone();
    (genes, history, interrupted)
}

/// Failed evaluations count as infinitely bad — a deterministic penalty
/// that keeps population and history shapes intact.
fn penalized_cost(c: Result<crate::problem::Candidate, crate::error::EvalError>) -> f64 {
    match c {
        Ok(c) => c.cost,
        Err(_) => f64::INFINITY,
    }
}

fn best_of(population: &[(Vec<f64>, f64)]) -> &(Vec<f64>, f64) {
    let Some(best) = population.iter().min_by(|a, b| a.1.total_cmp(&b.1)) else {
        panic!("population is non-empty")
    };
    best
}

fn tournament<'p>(population: &'p [(Vec<f64>, f64)], rng: &mut StdRng) -> &'p [f64] {
    let mut best: Option<&(Vec<f64>, f64)> = None;
    for _ in 0..TOURNAMENT {
        let cand = &population[rng.random_range(0..population.len())];
        if best.map(|b| cand.1 < b.1).unwrap_or(true) {
            best = Some(cand);
        }
    }
    let Some(best) = best else {
        panic!("tournament saw a candidate")
    };
    &best.0
}
