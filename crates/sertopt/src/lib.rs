//! SERTOPT — Soft-Error Tolerance OPTimization of nanometer circuits.
//!
//! The optimization half of the DATE'05 paper (§4). SERTOPT reassigns
//! per-gate delays **without changing any PI→PO path delay** — the
//! zero-delay-overhead guarantee — and realizes each assignment with
//! library cells that vary gate size, channel length, VDD and Vth,
//! minimizing the Eq. 5 cost
//!
//! ```text
//! C = W1·U/U₀ + W2·T/T₀ + W3·E/E₀ + W4·A/A₀
//! ```
//!
//! Delay moves live in the nullspace of the path-topology matrix `T`
//! ([`topology`]); because enumerating paths is exponential, the scalable
//! parameterization is the *tension space* ([`nullspace::TensionSpace`]):
//! potentials on merged fan-in net classes whose differences provably
//! change no path delay (verified against the exact nullspace on small
//! circuits). Delay targets are realized by reverse-topological library
//! matching under the paper's VDD monotonicity constraint
//! ([`matching`]), and the cost is minimized by an SQP-flavoured
//! projected-gradient search ([`optimize::sqp`]) or the paper-blessed
//! alternatives: simulated annealing, a genetic algorithm, and coordinate
//! descent.
//!
//! # Error handling
//!
//! Candidate evaluation is fallible: [`DelayProblem::try_evaluate_phi`]
//! and [`DelayProblem::evaluate_batch`] return typed [`EvalError`]s,
//! replica panics are caught per candidate at the thread-scope boundary,
//! and every optimizer skips or penalizes failed candidates
//! deterministically — see [`error`]. The library code itself is
//! compiled with `clippy::unwrap_used`/`clippy::expect_used` denied;
//! remaining panics are documented invariants.
//!
//! # Example
//!
//! ```no_run
//! use sertopt::{optimize, AllowedParams, OptimizeRequest, OptimizerConfig};
//! use ser_cells::{CharGrids, Library};
//! use ser_netlist::generate;
//! use ser_spice::Technology;
//!
//! let c432 = generate::iscas85("c432").unwrap();
//! let mut lib = Library::new(Technology::ptm70(), CharGrids::standard());
//! let req = OptimizeRequest::new(OptimizerConfig::default());
//! let outcome = optimize(&c432, &mut lib, &req);
//! println!(
//!     "unreliability −{:.0}% at {:.2}× delay",
//!     100.0 * outcome.unreliability_decrease(),
//!     outcome.delay_ratio()
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod allowed;
mod baseline;
pub mod cost;
pub mod error;
pub mod matching;
pub mod nullspace;
pub mod optimize;
mod problem;
mod result;
pub mod sta;
pub mod topology;

pub use allowed::AllowedParams;
pub use baseline::size_for_speed;
pub use cost::{CostBreakdown, CostWeights, EnergyModel};
pub use error::EvalError;
pub use matching::MatchPlan;
pub use optimize::{optimize, Algorithm, OptimizeRequest, OptimizerConfig};
#[allow(deprecated)]
pub use optimize::{optimize_circuit, optimize_circuit_with_budget};
pub use problem::{Candidate, DelayProblem, EvalStrategy};
pub use result::{Outcome, Termination};
