//! Baseline sizing for speed — the stand-in for the paper's "gate sizes
//! were obtained … by optimizing for speed using Synopsys Design
//! Compiler" step that produces the pre-SERTOPT circuits.

use aserta::{CircuitCells, LoadModel};
use ser_cells::Library;
use ser_netlist::Circuit;
use ser_spice::GateParams;

/// Sizes every gate for speed with a logical-effort-flavoured pass: in
/// reverse topological order, each gate's drive is chosen so its load is
/// driven with roughly a fixed effort (load ≈ `effort` × its own input
/// capacitance), clamped to the allowed size set. All other parameters
/// stay nominal (L 70 nm, VDD 1 V, Vth 0.2 V), as in the paper's §5.
///
/// Two passes suffice in practice: the first pass fixes fan-out loads,
/// the second refines against the now-known successor input caps.
pub fn size_for_speed(
    circuit: &Circuit,
    library: &mut Library,
    sizes: &[f64],
    load_model: LoadModel,
    effort: f64,
) -> CircuitCells {
    assert!(!sizes.is_empty(), "need at least one allowed size");
    assert!(effort > 0.0, "effort must be positive");
    let mut cells = CircuitCells::nominal(circuit);

    for _pass in 0..2 {
        // Reverse topological: successors (loads) first.
        let order: Vec<_> = circuit.topological_order().to_vec();
        for &id in order.iter().rev() {
            let node = circuit.node(id);
            if node.is_input() {
                continue;
            }
            // External load under the current assignment.
            let mut load = 0.0;
            for &s in circuit.fanout(id) {
                load += load_model.wire_cap_per_pin;
                if let Some(p) = cells.get(s) {
                    load += library.get_or_characterize(p).input_cap;
                }
            }
            if circuit.is_primary_output(id) {
                load += load_model.po_load;
            }
            // Pick the smallest size whose input cap × effort covers the
            // load (i.e. stage effort ≤ target), defaulting to the max.
            let Some(&fallback) = sizes.last() else {
                panic!("need at least one allowed size")
            };
            let mut chosen = fallback;
            let mut best: Option<f64> = None;
            for &size in sizes {
                let p = GateParams::new(node.kind, node.fanin.len()).with_size(size);
                let cin = library.get_or_characterize(&p).input_cap;
                if load <= effort * cin {
                    let better = match best {
                        Some(b) => size < b,
                        None => true,
                    };
                    if better {
                        best = Some(size);
                        chosen = size;
                    }
                }
            }
            if best.is_none() {
                chosen = sizes.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            }
            cells.set(
                id,
                GateParams::new(node.kind, node.fanin.len()).with_size(chosen),
            );
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use aserta::timing_view;
    use ser_cells::CharGrids;
    use ser_netlist::generate;
    use ser_spice::Technology;

    fn setup() -> (Circuit, Library, LoadModel) {
        (
            generate::c17(),
            Library::new(Technology::ptm70(), CharGrids::coarse()),
            LoadModel {
                wire_cap_per_pin: 0.05e-15,
                po_load: 2.0e-15,
            },
        )
    }

    #[test]
    fn speed_sizing_beats_unit_sizing() {
        let (c, mut lib, lm) = setup();
        let sized = size_for_speed(&c, &mut lib, &[1.0, 2.0, 4.0, 8.0], lm, 1.0);
        let unit = CircuitCells::nominal(&c);
        let t_sized = timing_view(&c, &sized, &mut lib, lm, 20.0e-12).critical_path_delay(&c);
        let t_unit = timing_view(&c, &unit, &mut lib, lm, 20.0e-12).critical_path_delay(&c);
        assert!(t_sized < t_unit, "{t_sized} vs {t_unit}");
    }

    #[test]
    fn po_drivers_get_upsized_for_latch_load() {
        let (c, mut lib, lm) = setup();
        let sized = size_for_speed(&c, &mut lib, &[1.0, 2.0, 4.0, 8.0], lm, 1.0);
        for &po in c.primary_outputs() {
            assert!(
                sized.get(po).unwrap().size > 1.0,
                "2 fF latch load needs drive"
            );
        }
    }

    #[test]
    fn single_size_set_degenerates_gracefully() {
        let (c, mut lib, lm) = setup();
        let sized = size_for_speed(&c, &mut lib, &[2.0], lm, 4.0);
        for g in c.gates() {
            assert_eq!(sized.get(g).unwrap().size, 2.0);
        }
    }
}
