//! Static timing analysis: arrival/required times, slacks and the
//! critical path over a per-node delay vector.

use ser_netlist::{Circuit, NodeId};

/// STA result over one delay assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Timing {
    /// Latest arrival time at each node's output.
    pub arrival: Vec<f64>,
    /// Required time at each node's output for the circuit to meet
    /// `clock`.
    pub required: Vec<f64>,
    /// Slack per node (`required − arrival`).
    pub slack: Vec<f64>,
    /// The critical (longest) PI→PO path delay.
    pub critical_delay: f64,
}

/// Runs STA. `delays[i]` is node `i`'s propagation delay (0 for primary
/// inputs); `clock` sets required times (use the critical delay itself
/// for zero-slack normalization).
pub fn analyze(circuit: &Circuit, delays: &[f64], clock: f64) -> Timing {
    let n = circuit.node_count();
    assert_eq!(delays.len(), n, "one delay per node");
    let mut arrival = vec![0.0f64; n];
    for &id in circuit.topological_order() {
        let node = circuit.node(id);
        let arr_in = node
            .fanin
            .iter()
            .map(|f| arrival[f.index()])
            .fold(0.0, f64::max);
        arrival[id.index()] = arr_in + delays[id.index()];
    }
    let critical_delay = circuit
        .primary_outputs()
        .iter()
        .map(|po| arrival[po.index()])
        .fold(0.0, f64::max);

    let mut required = vec![f64::INFINITY; n];
    for &po in circuit.primary_outputs() {
        required[po.index()] = clock;
    }
    for &id in circuit.topological_order().iter().rev() {
        let r_here = required[id.index()];
        for &f in &circuit.node(id).fanin {
            let r_pred = r_here - delays[id.index()];
            if r_pred < required[f.index()] {
                required[f.index()] = r_pred;
            }
        }
    }
    let slack: Vec<f64> = (0..n).map(|i| required[i] - arrival[i]).collect();

    Timing {
        arrival,
        required,
        slack,
        critical_delay,
    }
}

/// Extracts one critical path (PO back to PI) under `delays`.
pub fn critical_path(circuit: &Circuit, delays: &[f64]) -> Vec<NodeId> {
    let t = analyze(circuit, delays, 0.0);
    // Walk back from the worst PO along worst-arrival fan-ins.
    let Some(&worst_po) = circuit
        .primary_outputs()
        .iter()
        .max_by(|a, b| t.arrival[a.index()].total_cmp(&t.arrival[b.index()]))
    else {
        panic!("circuits have outputs")
    };
    let mut at = worst_po;
    let mut path = vec![at];
    loop {
        let node = circuit.node(at);
        if node.is_input() {
            break;
        }
        let Some(next) = node
            .fanin
            .iter()
            .copied()
            .max_by(|a, b| t.arrival[a.index()].total_cmp(&t.arrival[b.index()]))
        else {
            panic!("gates have fan-ins")
        };
        path.push(next);
        at = next;
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::{generate, CircuitBuilder, GateKind};

    #[test]
    fn chain_arrival_accumulates() {
        let mut b = CircuitBuilder::new("chain");
        let a = b.input("a");
        let g1 = b.gate(GateKind::Not, "g1", &[a]).unwrap();
        let g2 = b.gate(GateKind::Not, "g2", &[g1]).unwrap();
        b.mark_output(g2);
        let c = b.finish().unwrap();
        let mut delays = vec![0.0; c.node_count()];
        delays[g1.index()] = 3.0;
        delays[g2.index()] = 5.0;
        let t = analyze(&c, &delays, 8.0);
        assert_eq!(t.arrival[g2.index()], 8.0);
        assert_eq!(t.critical_delay, 8.0);
        // Zero slack everywhere on the critical chain at clock = delay.
        assert!(t.slack.iter().all(|&s| s.abs() < 1e-12 || s.is_infinite()));
    }

    #[test]
    fn slack_appears_on_short_paths() {
        // Two parallel paths of different length into one AND.
        let mut b = CircuitBuilder::new("par");
        let a = b.input("a");
        let long1 = b.gate(GateKind::Not, "l1", &[a]).unwrap();
        let long2 = b.gate(GateKind::Not, "l2", &[long1]).unwrap();
        let short = b.gate(GateKind::Buf, "s", &[a]).unwrap();
        let y = b.gate(GateKind::And, "y", &[long2, short]).unwrap();
        b.mark_output(y);
        let c = b.finish().unwrap();
        let mut delays = vec![0.0; c.node_count()];
        for g in [long1, long2, short, y] {
            delays[g.index()] = 1.0;
        }
        let t = analyze(&c, &delays, 3.0);
        assert_eq!(t.critical_delay, 3.0);
        assert!((t.slack[short.index()] - 1.0).abs() < 1e-12);
        assert!(t.slack[long1.index()].abs() < 1e-12);
    }

    #[test]
    fn critical_path_is_connected_pi_to_po() {
        let c = generate::iscas85("c432").unwrap();
        let delays: Vec<f64> = (0..c.node_count())
            .map(|i| {
                if c.node(NodeId::new(i)).is_input() {
                    0.0
                } else {
                    1.0
                }
            })
            .collect();
        let path = critical_path(&c, &delays);
        assert!(c.node(path[0]).is_input());
        assert!(c.is_primary_output(*path.last().unwrap()));
        for w in path.windows(2) {
            assert!(c.node(w[1]).fanin.contains(&w[0]), "path edge broken");
        }
        // Unit delays: path length−1 gates = critical delay.
        let t = analyze(&c, &delays, 0.0);
        assert_eq!((path.len() - 1) as f64, t.critical_delay);
    }
}
