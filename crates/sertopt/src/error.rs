//! Typed evaluation errors — the SERTOPT sibling of
//! [`aserta::AnalysisError`].
//!
//! One candidate evaluation runs matching (targets → cells) and then an
//! ASERTA measurement on a session replica. Either stage can fail on
//! untrusted or degenerate input, and under the `fail-points` feature
//! either can be forced to fail or panic. Every failure surfaces as an
//! [`EvalError`] from [`DelayProblem::try_evaluate_phi`] or as one
//! `Err` entry of [`DelayProblem::evaluate_batch`]; the optimizers skip
//! or penalize failed candidates deterministically, so a fault never
//! aborts a search.
//!
//! [`DelayProblem::try_evaluate_phi`]: crate::DelayProblem::try_evaluate_phi
//! [`DelayProblem::evaluate_batch`]: crate::DelayProblem::evaluate_batch

use std::fmt;

/// Why one candidate evaluation failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EvalError {
    /// The ASERTA measurement rejected the candidate or poisoned its
    /// session (the replica rebuilds itself before its next evaluation).
    Analysis(aserta::AnalysisError),
    /// Delay-to-cell matching could not realize the targets.
    Match {
        /// What the matcher objected to.
        reason: &'static str,
    },
    /// A replica panicked mid-evaluation; the panic was caught at the
    /// thread-scope boundary and the replica is rebuilt from scratch
    /// before its next evaluation.
    Panicked {
        /// Where the panic was caught.
        context: &'static str,
    },
    /// A `fail-points` test hook fired (named by its fail point).
    FaultInjected(&'static str),
}

impl From<aserta::AnalysisError> for EvalError {
    fn from(e: aserta::AnalysisError) -> Self {
        EvalError::Analysis(e)
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Analysis(e) => write!(f, "analysis failed: {e}"),
            EvalError::Match { reason } => write!(f, "matching failed: {reason}"),
            EvalError::Panicked { context } => {
                write!(f, "evaluation panicked (caught at {context})")
            }
            EvalError::FaultInjected(name) => write!(f, "fault injected at `{name}`"),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Analysis(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = EvalError::Match {
            reason: "one target delay per node",
        };
        assert!(e.to_string().contains("one target delay per node"));
        let e = EvalError::from(aserta::AnalysisError::NonFiniteInput {
            what: "injected charge",
            value: f64::NAN,
        });
        assert!(e.to_string().contains("injected charge"));
        assert!(std::error::Error::source(&e).is_some());
        let e = EvalError::FaultInjected("sertopt::replica_evaluate");
        assert!(e.to_string().contains("sertopt::replica_evaluate"));
    }
}
