//! Delay-assignment realization: the paper's reverse-topological matching
//! of target delays to library cells.
//!
//! "To find the circuit parameters (gate sizes, lengths, VDDs, Vths) that
//! are needed to match a delay assignment, SERTOPT traverses the circuit
//! from POs to PIs in reverse topological order. The capacitive loads of
//! the gates at the POs are known … From these loads and the delay
//! assignments …, the best matching sizes, lengths, VDDs, Vths … that
//! yield delays closest to the assigned delays are found … The only
//! constraint … is that only VDD values greater than or equal to
//! successor VDD values are allowed" (no level shifters).

use aserta::{CircuitCells, LoadModel};
use ser_cells::{CharacterizedCell, Library};
use ser_netlist::{Circuit, GateKind, NodeId};
use ser_spice::GateParams;

use crate::allowed::AllowedParams;
use crate::error::EvalError;

/// Matching knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchingConfig {
    /// The allowed discrete parameter grid.
    pub allowed: AllowedParams,
    /// Load model (wire + latch capacitance).
    pub load_model: LoadModel,
    /// Input ramp assumed during the first matching pass, seconds.
    pub assumed_ramp: f64,
    /// Refinement passes re-running the match with ramps computed from
    /// the previous assignment (0 = single pass).
    pub refine_passes: usize,
    /// Weight of energy in the tie-break (delay mismatch dominates; among
    /// near-equal matches, prefer low leakage+switching energy).
    pub energy_tiebreak: f64,
}

impl MatchingConfig {
    /// Defaults: 30 ps assumed ramp, one refinement pass, mild energy
    /// tie-break.
    pub fn new(allowed: AllowedParams) -> Self {
        MatchingConfig {
            allowed,
            load_model: LoadModel {
                wire_cap_per_pin: 0.05e-15,
                po_load: 2.0e-15,
            },
            assumed_ramp: 30.0e-12,
            refine_passes: 1,
            energy_tiebreak: 0.05,
        }
    }
}

/// Matches `target_delays` (per node, seconds) to cells.
///
/// `reference`, when given, anchors the match: loads and input ramps are
/// taken from the reference assignment's timing view instead of from the
/// in-construction successor choices. With the baseline as reference and
/// targets equal to its own realized delays, matching reproduces the
/// baseline exactly — the fixed point SERTOPT's zero-move must land on.
/// Refinement passes then re-anchor on the previous pass's result.
///
/// Single-engine note: this is a thin wrapper that compiles a
/// [`MatchPlan`] and applies it once — there is no separate fresh
/// matching implementation. Callers matching repeatedly should build the
/// plan themselves and call [`MatchPlan::realize`] per target vector.
/// The `matching` test module pins the wrapper bitwise against the
/// pre-consolidation implementation.
///
/// Returns the realized assignment. The caller can obtain the realized
/// delays via [`aserta::timing_view`]; they differ from the targets by
/// the library's quantization (the paper: "the timing constraint might
/// still be exceeded slightly because of the finite size library").
pub fn match_delays(
    circuit: &Circuit,
    target_delays: &[f64],
    library: &mut Library,
    cfg: &MatchingConfig,
    reference: Option<&CircuitCells>,
) -> CircuitCells {
    MatchPlan::build(circuit, library, cfg, reference).realize(circuit, target_delays)
}

/// A precompiled matcher — the **only** matching engine (the fresh
/// [`match_delays`] wrapper compiles a plan and applies it once): every
/// allowed candidate's parameters and characterized cell are folded into
/// flat tables, so realizing a delay assignment never touches the
/// library — no hashing, no characterization, no `&mut` anywhere.
///
/// With a `reference` anchor the pass-1 loads/ramps come from the
/// reference assignment's timing view and every candidate's pass-1
/// delay/tie-break is precomputed; without one, pass 1 matches "from
/// scratch", deriving each gate's load from the successors already
/// chosen in the same reverse-topological sweep. Each refinement pass
/// re-derives the loads/ramps of the previous pass's choices from the
/// pooled cells (exactly [`aserta::timing_view`]'s arithmetic) and
/// re-scans with live lookups. Candidates are enumerated in the fixed
/// grid order, scored with one shared expression and compared with
/// strict `<`, and the VDD-monotonicity floor is enforced in the same
/// reverse topological sweep — the `matching` test module pins both
/// anchor modes bitwise against the pre-consolidation implementation.
#[derive(Debug, Clone)]
pub struct MatchPlan {
    /// Gate nodes in reverse topological order (primary inputs skipped).
    order: Vec<u32>,
    /// Per-node candidate table offsets (`n + 1`; empty for inputs).
    cand_off: Vec<u32>,
    cand_params: Vec<GateParams>,
    /// Candidate delay at the gate's pass-1 anchored (load, ramp); empty
    /// when the plan was built without a reference.
    cand_delay: Vec<f64>,
    /// `energy_tiebreak * e_norm * 1e-12` at the pass-1 anchor; empty
    /// when the plan was built without a reference.
    cand_tiebreak: Vec<f64>,
    /// Pool index of each candidate's characterized cell.
    cand_cell: Vec<u32>,
    /// One characterized cell per (template, grid point) — shared by all
    /// gates of the same template.
    pool: Vec<CharacterizedCell>,
    /// Whether pass 1 reads the precomputed anchor tables (`true`) or
    /// matches from scratch (`false`).
    anchored: bool,
    refine_passes: usize,
    load_model: LoadModel,
    assumed_ramp: f64,
    energy_tiebreak: f64,
}

/// How one matching pass derives each gate's (load, ramp) operating
/// point.
#[derive(Clone, Copy)]
enum ScanMode<'a> {
    /// Pass 1 with a reference anchor: read the precompiled tables.
    Anchored,
    /// Pass 1 without a reference: loads from the successors chosen so
    /// far in the same reverse-topological sweep, ramps at the assumed
    /// value.
    Scratch,
    /// Refinement: the `(loads, in_ramps)` of the previous pass's
    /// choices.
    Timing(&'a [f64], &'a [f64]),
}

impl MatchPlan {
    /// Compiles the plan: characterizes the allowed grid (bulk,
    /// parallel), pools the cells every pass interrogates and — when a
    /// `reference` is given — anchors pass-1 loads/ramps on its timing
    /// view and tabulates every candidate's delay/tie-break.
    pub fn build(
        circuit: &Circuit,
        library: &mut Library,
        cfg: &MatchingConfig,
        reference: Option<&CircuitCells>,
    ) -> Self {
        let spec = cfg.allowed.library_spec(circuit);
        library.characterize_spec(&spec, 0);
        let anchor = reference.map(|reference| {
            aserta::timing_view(
                circuit,
                reference,
                library,
                cfg.load_model,
                cfg.assumed_ramp,
            )
        });

        let n = circuit.node_count();
        let per_gate = cfg.allowed.variants_per_template();
        let mut cand_off = Vec::with_capacity(n + 1);
        let mut cand_params = Vec::with_capacity(circuit.gate_count() * per_gate);
        let mut cand_delay = Vec::with_capacity(cand_params.capacity());
        let mut cand_tiebreak = Vec::with_capacity(cand_params.capacity());
        let mut cand_cell = Vec::with_capacity(cand_params.capacity());
        let mut pool: Vec<CharacterizedCell> = Vec::new();
        let mut templates: Vec<((GateKind, usize), u32)> = Vec::new();
        cand_off.push(0u32);
        for id in circuit.node_ids() {
            let node = circuit.node(id);
            if !node.is_input() {
                let template = (node.kind, node.fanin.len());
                let base = match templates.iter().find(|(t, _)| *t == template) {
                    Some(&(_, base)) => base,
                    None => {
                        let base = pool.len() as u32;
                        for p in grid_points(&cfg.allowed, node.kind, node.fanin.len()) {
                            pool.push(library.get_or_characterize(&p).clone());
                        }
                        templates.push((template, base));
                        base
                    }
                };
                for (k, p) in grid_points(&cfg.allowed, node.kind, node.fanin.len()).enumerate() {
                    let cell = &pool[base as usize + k];
                    debug_assert_eq!(cell.params, p);
                    cand_params.push(p);
                    cand_cell.push(base + k as u32);
                    if let Some(tv) = &anchor {
                        let load = tv.loads[id.index()];
                        let e_norm = cell.leak_power * 1e9 + cell.dynamic_energy(load) * 1e12;
                        cand_delay.push(cell.delay_at(load, tv.in_ramps[id.index()]));
                        cand_tiebreak.push(cfg.energy_tiebreak * e_norm * 1.0e-12);
                    }
                }
            }
            cand_off.push(cand_params.len() as u32);
        }
        let order: Vec<u32> = circuit
            .topological_order()
            .iter()
            .rev()
            .filter(|id| !circuit.node(**id).is_input())
            .map(|id| id.index() as u32)
            .collect();

        MatchPlan {
            order,
            cand_off,
            cand_params,
            cand_delay,
            cand_tiebreak,
            cand_cell,
            pool,
            anchored: anchor.is_some(),
            refine_passes: cfg.refine_passes,
            load_model: cfg.load_model,
            assumed_ramp: cfg.assumed_ramp,
            energy_tiebreak: cfg.energy_tiebreak,
        }
    }

    /// Realizes `target_delays` against the precompiled tables (see the
    /// type docs for the equivalence contract).
    ///
    /// # Panics
    ///
    /// Panics on any condition [`MatchPlan::try_realize`] reports as an
    /// error (wrong target count, non-finite targets, unsatisfiable
    /// grid).
    pub fn realize(&self, circuit: &Circuit, target_delays: &[f64]) -> CircuitCells {
        match self.try_realize(circuit, target_delays) {
            Ok(cells) => cells,
            Err(e) => panic!("realize: {e}"),
        }
    }

    /// Fallible [`MatchPlan::realize`]: rejects malformed targets (wrong
    /// count, non-finite entries) and an unsatisfiable candidate grid
    /// with a typed [`EvalError`] instead of panicking. The plan itself
    /// is immutable, so a failed realization has no state to corrupt.
    pub fn try_realize(
        &self,
        circuit: &Circuit,
        target_delays: &[f64],
    ) -> Result<CircuitCells, EvalError> {
        ser_netlist::failpoint!(
            "sertopt::match_realize",
            return Err(EvalError::FaultInjected("sertopt::match_realize"))
        );
        if target_delays.len() != circuit.node_count() {
            return Err(EvalError::Match {
                reason: "one target delay per node",
            });
        }
        if target_delays.iter().any(|d| !d.is_finite()) {
            return Err(EvalError::Match {
                reason: "target delays must be finite",
            });
        }
        let mut choice = vec![u32::MAX; circuit.node_count()];
        let pass1 = if self.anchored {
            ScanMode::Anchored
        } else {
            ScanMode::Scratch
        };
        self.scan(circuit, target_delays, pass1, &mut choice)?;
        for _ in 0..self.refine_passes {
            ser_netlist::failpoint!(
                "sertopt::match_refine",
                return Err(EvalError::FaultInjected("sertopt::match_refine"))
            );
            let (loads, in_ramps) = self.anchor_timing(circuit, &choice);
            self.scan(
                circuit,
                target_delays,
                ScanMode::Timing(&loads, &in_ramps),
                &mut choice,
            )?;
        }
        let mut cells = CircuitCells::nominal(circuit);
        for &i in &self.order {
            let id = NodeId::new(i as usize);
            cells.set(id, self.cand_params[choice[i as usize] as usize]);
        }
        Ok(cells)
    }

    /// One reverse-topological matching pass (see [`ScanMode`] for how
    /// the per-gate operating point is derived).
    fn scan(
        &self,
        circuit: &Circuit,
        target_delays: &[f64],
        mode: ScanMode<'_>,
        choice: &mut [u32],
    ) -> Result<(), EvalError> {
        let mut chosen_vdd: Vec<f64> = vec![f64::NAN; circuit.node_count()];
        for &i in &self.order {
            let id = NodeId::new(i as usize);
            let vdd_floor = circuit
                .fanout(id)
                .iter()
                .filter_map(|&s| {
                    let v = chosen_vdd[s.index()];
                    if v.is_nan() {
                        None
                    } else {
                        Some(v)
                    }
                })
                .fold(0.0, f64::max);
            // Scratch mode: the load comes from the successors chosen so
            // far (fan-outs precede their drivers in reverse topological
            // order, so every successor already has a pooled cell).
            let scratch_load = match mode {
                ScanMode::Scratch => {
                    let mut load = 0.0;
                    for &s in circuit.fanout(id) {
                        load += self.load_model.wire_cap_per_pin;
                        let c = choice[s.index()];
                        if c != u32::MAX {
                            load += self.pool[self.cand_cell[c as usize] as usize].input_cap;
                        }
                    }
                    if circuit.is_primary_output(id) {
                        load += self.load_model.po_load;
                    }
                    load
                }
                _ => 0.0,
            };
            let target = target_delays[i as usize];
            let lo = self.cand_off[i as usize] as usize;
            let hi = self.cand_off[i as usize + 1] as usize;
            let mut best: Option<(f64, usize)> = None;
            for c in lo..hi {
                if self.cand_params[c].vdd + 1e-12 < vdd_floor {
                    continue;
                }
                let score = match mode {
                    ScanMode::Anchored => {
                        (self.cand_delay[c] - target).abs() + self.cand_tiebreak[c]
                    }
                    ScanMode::Scratch => {
                        let cell = &self.pool[self.cand_cell[c] as usize];
                        let d = cell.delay_at(scratch_load, self.assumed_ramp);
                        let e_norm =
                            cell.leak_power * 1e9 + cell.dynamic_energy(scratch_load) * 1e12;
                        (d - target).abs() + self.energy_tiebreak * e_norm * 1.0e-12
                    }
                    ScanMode::Timing(loads, in_ramps) => {
                        let load = loads[i as usize];
                        let cell = &self.pool[self.cand_cell[c] as usize];
                        let d = cell.delay_at(load, in_ramps[i as usize]);
                        let e_norm = cell.leak_power * 1e9 + cell.dynamic_energy(load) * 1e12;
                        (d - target).abs() + self.energy_tiebreak * e_norm * 1.0e-12
                    }
                };
                let better = match &best {
                    Some((s, _)) => score < *s,
                    None => true,
                };
                if better {
                    best = Some((score, c));
                }
            }
            let Some((_, c)) = best else {
                return Err(EvalError::Match {
                    reason: "allowed grid is empty or the VDD floor is unsatisfiable",
                });
            };
            chosen_vdd[i as usize] = self.cand_params[c].vdd;
            choice[i as usize] = c as u32;
        }
        Ok(())
    }

    /// The loads and input ramps of the current choices — exactly
    /// [`aserta::timing_view`]'s arithmetic over the pooled cells, which
    /// is what [`match_delays`] anchors its refinement passes on.
    fn anchor_timing(&self, circuit: &Circuit, choice: &[u32]) -> (Vec<f64>, Vec<f64>) {
        let n = circuit.node_count();
        let cell_of = |i: usize| &self.pool[self.cand_cell[choice[i] as usize] as usize];
        let mut loads = vec![0.0f64; n];
        for id in circuit.node_ids() {
            loads[id.index()] = aserta::node_load(circuit, id, self.load_model, |s| {
                if choice[s.index()] != u32::MAX {
                    Some(cell_of(s.index()).input_cap)
                } else {
                    None
                }
            });
        }
        let mut in_ramps = vec![self.assumed_ramp; n];
        let mut out_ramps = vec![self.assumed_ramp; n];
        for &id in circuit.topological_order() {
            let node = circuit.node(id);
            if node.is_input() {
                continue;
            }
            let ramp_in = aserta::gate_input_ramp(node, &out_ramps);
            in_ramps[id.index()] = ramp_in;
            out_ramps[id.index()] = cell_of(id.index()).out_ramp_at(loads[id.index()], ramp_in);
        }
        (loads, in_ramps)
    }
}

/// The allowed grid of one template, in [`match_delays`]'s exact
/// enumeration order (sizes, then lengths, then VDDs, then Vths).
fn grid_points<'a>(
    allowed: &'a AllowedParams,
    kind: GateKind,
    fanin: usize,
) -> impl Iterator<Item = GateParams> + 'a {
    allowed.sizes.iter().flat_map(move |&size| {
        allowed.lengths_nm.iter().flat_map(move |&l| {
            allowed.vdds.iter().flat_map(move |&vdd| {
                allowed.vths.iter().map(move |&vth| {
                    GateParams::new(kind, fanin)
                        .with_size(size)
                        .with_length(l)
                        .with_vdd(vdd)
                        .with_vth(vth)
                })
            })
        })
    })
}

/// Checks the no-level-shifter invariant on an assignment: every gate's
/// VDD is ≥ each of its fan-out gates' VDD. Returns offending pairs.
pub fn vdd_violations(circuit: &Circuit, cells: &CircuitCells) -> Vec<(NodeId, NodeId)> {
    let mut bad = Vec::new();
    for id in circuit.gates() {
        let Some(p) = cells.get(id) else {
            panic!("gates carry parameters")
        };
        let v = p.vdd;
        for &s in circuit.fanout(id) {
            if let Some(ps) = cells.get(s) {
                if v + 1e-12 < ps.vdd {
                    bad.push((id, s));
                }
            }
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use aserta::timing_view;
    use ser_cells::CharGrids;
    use ser_netlist::generate;
    use ser_spice::Technology;

    fn lib() -> Library {
        Library::new(Technology::ptm70(), CharGrids::coarse())
    }

    #[test]
    fn matching_tracks_targets() {
        let c = generate::c17();
        let mut l = lib();
        let cfg = MatchingConfig::new(AllowedParams::tiny());
        // Aim everything at a mid-range delay.
        let targets = vec![25.0e-12; c.node_count()];
        let cells = match_delays(&c, &targets, &mut l, &cfg, None);
        let tv = timing_view(&c, &cells, &mut l, cfg.load_model, cfg.assumed_ramp);
        for g in c.gates() {
            let realized = tv.delays[g.index()];
            assert!(
                realized > 5.0e-12 && realized < 120.0e-12,
                "gate {g}: {realized:e} wildly off 25 ps"
            );
        }
    }

    #[test]
    fn slower_targets_produce_slower_cells() {
        let c = generate::c17();
        let mut l = lib();
        let cfg = MatchingConfig::new(AllowedParams::tiny());
        let fast = match_delays(&c, &vec![5.0e-12; c.node_count()], &mut l, &cfg, None);
        let slow = match_delays(&c, &vec![120.0e-12; c.node_count()], &mut l, &cfg, None);
        let t_fast = timing_view(&c, &fast, &mut l, cfg.load_model, 30e-12).critical_path_delay(&c);
        let t_slow = timing_view(&c, &slow, &mut l, cfg.load_model, 30e-12).critical_path_delay(&c);
        assert!(t_fast < t_slow, "{t_fast:e} vs {t_slow:e}");
    }

    #[test]
    fn vdd_monotonicity_holds_with_multi_vdd() {
        let c = generate::iscas85("c432").unwrap();
        let mut l = lib();
        let mut allowed = AllowedParams::tiny();
        allowed.vdds = vec![0.8, 1.0];
        let cfg = MatchingConfig::new(allowed);
        // Mixed targets to push the matcher around.
        let targets: Vec<f64> = (0..c.node_count())
            .map(|i| 10.0e-12 + (i % 7) as f64 * 15.0e-12)
            .collect();
        let cells = match_delays(&c, &targets, &mut l, &cfg, None);
        assert!(vdd_violations(&c, &cells).is_empty());
    }

    /// The pre-consolidation matcher, captured verbatim as the bitwise
    /// oracle for both [`MatchPlan`] anchor modes: a reverse-topological
    /// pass with live library lookups, loads from the anchor timing view
    /// (or from the successors chosen so far when matching from
    /// scratch), and `timing_view`-anchored refinement passes.
    fn reference_match_delays(
        circuit: &Circuit,
        target_delays: &[f64],
        library: &mut Library,
        cfg: &MatchingConfig,
        reference: Option<&CircuitCells>,
    ) -> CircuitCells {
        fn one_pass(
            circuit: &Circuit,
            target_delays: &[f64],
            library: &mut Library,
            cfg: &MatchingConfig,
            in_ramps: &[f64],
            fixed_loads: Option<&[f64]>,
        ) -> CircuitCells {
            let mut cells = CircuitCells::nominal(circuit);
            let mut chosen_vdd: Vec<f64> = vec![f64::NAN; circuit.node_count()];
            let order: Vec<NodeId> = circuit.topological_order().to_vec();
            for &id in order.iter().rev() {
                let node = circuit.node(id);
                if node.is_input() {
                    continue;
                }
                let load = match fixed_loads {
                    Some(loads) => loads[id.index()],
                    None => {
                        let mut load = 0.0;
                        for &s in circuit.fanout(id) {
                            load += cfg.load_model.wire_cap_per_pin;
                            if let Some(p) = cells.get(s) {
                                load += library.get_or_characterize(p).input_cap;
                            }
                        }
                        if circuit.is_primary_output(id) {
                            load += cfg.load_model.po_load;
                        }
                        load
                    }
                };
                let vdd_floor = circuit
                    .fanout(id)
                    .iter()
                    .filter_map(|&s| {
                        let v = chosen_vdd[s.index()];
                        if v.is_nan() {
                            None
                        } else {
                            Some(v)
                        }
                    })
                    .fold(0.0, f64::max);
                let target = target_delays[id.index()];
                let ramp = in_ramps[id.index()];
                let mut best: Option<(f64, GateParams)> = None;
                for &size in &cfg.allowed.sizes {
                    for &l in &cfg.allowed.lengths_nm {
                        for &vdd in &cfg.allowed.vdds {
                            if vdd + 1e-12 < vdd_floor {
                                continue;
                            }
                            for &vth in &cfg.allowed.vths {
                                let p = GateParams::new(node.kind, node.fanin.len())
                                    .with_size(size)
                                    .with_length(l)
                                    .with_vdd(vdd)
                                    .with_vth(vth);
                                let cell = library.get_or_characterize(&p);
                                let d = cell.delay_at(load, ramp);
                                let e_norm =
                                    cell.leak_power * 1e9 + cell.dynamic_energy(load) * 1e12;
                                let score =
                                    (d - target).abs() + cfg.energy_tiebreak * e_norm * 1.0e-12;
                                let better = match &best {
                                    Some((s, _)) => score < *s,
                                    None => true,
                                };
                                if better {
                                    best = Some((score, p));
                                }
                            }
                        }
                    }
                }
                let (_, p) = best.expect("allowed grid is non-empty");
                chosen_vdd[id.index()] = p.vdd;
                cells.set(id, p);
            }
            cells
        }

        let spec = cfg.allowed.library_spec(circuit);
        library.characterize_spec(&spec, 0);
        let mut cells = match reference {
            Some(reference) => {
                let tv = aserta::timing_view(
                    circuit,
                    reference,
                    library,
                    cfg.load_model,
                    cfg.assumed_ramp,
                );
                one_pass(
                    circuit,
                    target_delays,
                    library,
                    cfg,
                    &tv.in_ramps,
                    Some(&tv.loads),
                )
            }
            None => {
                let ramps = vec![cfg.assumed_ramp; circuit.node_count()];
                one_pass(circuit, target_delays, library, cfg, &ramps, None)
            }
        };
        for _ in 0..cfg.refine_passes {
            let tv =
                aserta::timing_view(circuit, &cells, library, cfg.load_model, cfg.assumed_ramp);
            cells = one_pass(
                circuit,
                target_delays,
                library,
                cfg,
                &tv.in_ramps,
                Some(&tv.loads),
            );
        }
        cells
    }

    #[test]
    fn plan_matches_reference_matcher_bitwise() {
        for (circuit, allowed) in [
            (generate::c17(), AllowedParams::tiny()),
            (generate::iscas85("c432").unwrap(), {
                let mut a = AllowedParams::tiny();
                a.vdds = vec![0.8, 1.0]; // exercise the VDD floor
                a
            }),
        ] {
            for refine_passes in [0usize, 1, 2] {
                for with_reference in [false, true] {
                    let mut l = lib();
                    let mut cfg = MatchingConfig::new(allowed.clone());
                    cfg.refine_passes = refine_passes;
                    let nominal = aserta::CircuitCells::nominal(&circuit);
                    let reference = with_reference.then_some(&nominal);
                    let plan = MatchPlan::build(&circuit, &mut l, &cfg, reference);
                    for round in 0..3u32 {
                        let targets: Vec<f64> = (0..circuit.node_count())
                            .map(|i| 8.0e-12 + ((i as u32 * 7 + round * 13) % 11) as f64 * 9.0e-12)
                            .collect();
                        let want =
                            reference_match_delays(&circuit, &targets, &mut l, &cfg, reference);
                        let got = plan.realize(&circuit, &targets);
                        let wrapped = match_delays(&circuit, &targets, &mut l, &cfg, reference);
                        for g in circuit.gates() {
                            assert_eq!(
                                got.get(g),
                                want.get(g),
                                "gate {g} round {round} refine {refine_passes} ref {with_reference}"
                            );
                            assert_eq!(wrapped.get(g), want.get(g), "wrapper, gate {g}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn chosen_cells_stay_in_allowed_grid() {
        let c = generate::c17();
        let mut l = lib();
        let cfg = MatchingConfig::new(AllowedParams::tiny());
        let cells = match_delays(&c, &vec![20.0e-12; c.node_count()], &mut l, &cfg, None);
        for g in c.gates() {
            assert!(cfg.allowed.contains(cells.get(g).unwrap()));
        }
    }
}
