//! Delay-assignment realization: the paper's reverse-topological matching
//! of target delays to library cells.
//!
//! "To find the circuit parameters (gate sizes, lengths, VDDs, Vths) that
//! are needed to match a delay assignment, SERTOPT traverses the circuit
//! from POs to PIs in reverse topological order. The capacitive loads of
//! the gates at the POs are known … From these loads and the delay
//! assignments …, the best matching sizes, lengths, VDDs, Vths … that
//! yield delays closest to the assigned delays are found … The only
//! constraint … is that only VDD values greater than or equal to
//! successor VDD values are allowed" (no level shifters).

use aserta::{CircuitCells, LoadModel};
use ser_cells::Library;
use ser_netlist::{Circuit, NodeId};
use ser_spice::GateParams;

use crate::allowed::AllowedParams;

/// Matching knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchingConfig {
    /// The allowed discrete parameter grid.
    pub allowed: AllowedParams,
    /// Load model (wire + latch capacitance).
    pub load_model: LoadModel,
    /// Input ramp assumed during the first matching pass, seconds.
    pub assumed_ramp: f64,
    /// Refinement passes re-running the match with ramps computed from
    /// the previous assignment (0 = single pass).
    pub refine_passes: usize,
    /// Weight of energy in the tie-break (delay mismatch dominates; among
    /// near-equal matches, prefer low leakage+switching energy).
    pub energy_tiebreak: f64,
}

impl MatchingConfig {
    /// Defaults: 30 ps assumed ramp, one refinement pass, mild energy
    /// tie-break.
    pub fn new(allowed: AllowedParams) -> Self {
        MatchingConfig {
            allowed,
            load_model: LoadModel {
                wire_cap_per_pin: 0.05e-15,
                po_load: 2.0e-15,
            },
            assumed_ramp: 30.0e-12,
            refine_passes: 1,
            energy_tiebreak: 0.05,
        }
    }
}

/// Matches `target_delays` (per node, seconds) to cells.
///
/// `reference`, when given, anchors the match: loads and input ramps are
/// taken from the reference assignment's timing view instead of from the
/// in-construction successor choices. With the baseline as reference and
/// targets equal to its own realized delays, matching reproduces the
/// baseline exactly — the fixed point SERTOPT's zero-move must land on.
/// Refinement passes then re-anchor on the previous pass's result.
///
/// Returns the realized assignment. The caller can obtain the realized
/// delays via [`aserta::timing_view`]; they differ from the targets by
/// the library's quantization (the paper: "the timing constraint might
/// still be exceeded slightly because of the finite size library").
pub fn match_delays(
    circuit: &Circuit,
    target_delays: &[f64],
    library: &mut Library,
    cfg: &MatchingConfig,
    reference: Option<&CircuitCells>,
) -> CircuitCells {
    assert_eq!(
        target_delays.len(),
        circuit.node_count(),
        "one target delay per node"
    );
    // Ensure every needed variant exists (bulk, parallel).
    let spec = cfg.allowed.library_spec(circuit);
    library.characterize_spec(&spec, 0);

    let mut cells = match reference {
        Some(reference) => {
            let tv = aserta::timing_view(
                circuit,
                reference,
                library,
                cfg.load_model,
                cfg.assumed_ramp,
            );
            one_pass(
                circuit,
                target_delays,
                library,
                cfg,
                &tv.in_ramps,
                Some(&tv.loads),
            )
        }
        None => {
            let ramps = vec![cfg.assumed_ramp; circuit.node_count()];
            one_pass(circuit, target_delays, library, cfg, &ramps, None)
        }
    };
    for _ in 0..cfg.refine_passes {
        // Re-anchor on the current assignment, then re-match.
        let tv = aserta::timing_view(circuit, &cells, library, cfg.load_model, cfg.assumed_ramp);
        cells = one_pass(
            circuit,
            target_delays,
            library,
            cfg,
            &tv.in_ramps,
            Some(&tv.loads),
        );
    }
    cells
}

fn one_pass(
    circuit: &Circuit,
    target_delays: &[f64],
    library: &mut Library,
    cfg: &MatchingConfig,
    in_ramps: &[f64],
    fixed_loads: Option<&[f64]>,
) -> CircuitCells {
    let mut cells = CircuitCells::nominal(circuit);
    let mut chosen_vdd: Vec<f64> = vec![f64::NAN; circuit.node_count()];

    let order: Vec<NodeId> = circuit.topological_order().to_vec();
    for &id in order.iter().rev() {
        let node = circuit.node(id);
        if node.is_input() {
            continue;
        }
        // Load from the anchor assignment, or from already-chosen
        // successors when matching from scratch.
        let load = match fixed_loads {
            Some(loads) => loads[id.index()],
            None => {
                let mut load = 0.0;
                for &s in circuit.fanout(id) {
                    load += cfg.load_model.wire_cap_per_pin;
                    if let Some(p) = cells.get(s) {
                        load += library.get_or_characterize(p).input_cap;
                    }
                }
                if circuit.is_primary_output(id) {
                    load += cfg.load_model.po_load;
                }
                load
            }
        };
        // VDD floor: no low-VDD gate may drive a high-VDD gate.
        let vdd_floor = circuit
            .fanout(id)
            .iter()
            .filter_map(|&s| {
                let v = chosen_vdd[s.index()];
                if v.is_nan() {
                    None
                } else {
                    Some(v)
                }
            })
            .fold(0.0, f64::max);

        let target = target_delays[id.index()];
        let ramp = in_ramps[id.index()];
        let mut best: Option<(f64, GateParams)> = None;
        for &size in &cfg.allowed.sizes {
            for &l in &cfg.allowed.lengths_nm {
                for &vdd in &cfg.allowed.vdds {
                    if vdd + 1e-12 < vdd_floor {
                        continue;
                    }
                    for &vth in &cfg.allowed.vths {
                        let p = GateParams::new(node.kind, node.fanin.len())
                            .with_size(size)
                            .with_length(l)
                            .with_vdd(vdd)
                            .with_vth(vth);
                        let cell = library.get_or_characterize(&p);
                        let d = cell.delay_at(load, ramp);
                        let e_norm = cell.leak_power * 1e9 + cell.dynamic_energy(load) * 1e12;
                        let score = (d - target).abs() + cfg.energy_tiebreak * e_norm * 1.0e-12;
                        let better = match &best {
                            Some((s, _)) => score < *s,
                            None => true,
                        };
                        if better {
                            best = Some((score, p));
                        }
                    }
                }
            }
        }
        let (_, p) = best.expect("allowed grid is non-empty and VDD floor is satisfiable");
        chosen_vdd[id.index()] = p.vdd;
        cells.set(id, p);
    }
    cells
}

/// Checks the no-level-shifter invariant on an assignment: every gate's
/// VDD is ≥ each of its fan-out gates' VDD. Returns offending pairs.
pub fn vdd_violations(circuit: &Circuit, cells: &CircuitCells) -> Vec<(NodeId, NodeId)> {
    let mut bad = Vec::new();
    for id in circuit.gates() {
        let v = cells.get(id).expect("gates carry parameters").vdd;
        for &s in circuit.fanout(id) {
            if let Some(ps) = cells.get(s) {
                if v + 1e-12 < ps.vdd {
                    bad.push((id, s));
                }
            }
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use aserta::timing_view;
    use ser_cells::CharGrids;
    use ser_netlist::generate;
    use ser_spice::Technology;

    fn lib() -> Library {
        Library::new(Technology::ptm70(), CharGrids::coarse())
    }

    #[test]
    fn matching_tracks_targets() {
        let c = generate::c17();
        let mut l = lib();
        let cfg = MatchingConfig::new(AllowedParams::tiny());
        // Aim everything at a mid-range delay.
        let targets = vec![25.0e-12; c.node_count()];
        let cells = match_delays(&c, &targets, &mut l, &cfg, None);
        let tv = timing_view(&c, &cells, &mut l, cfg.load_model, cfg.assumed_ramp);
        for g in c.gates() {
            let realized = tv.delays[g.index()];
            assert!(
                realized > 5.0e-12 && realized < 120.0e-12,
                "gate {g}: {realized:e} wildly off 25 ps"
            );
        }
    }

    #[test]
    fn slower_targets_produce_slower_cells() {
        let c = generate::c17();
        let mut l = lib();
        let cfg = MatchingConfig::new(AllowedParams::tiny());
        let fast = match_delays(&c, &vec![5.0e-12; c.node_count()], &mut l, &cfg, None);
        let slow = match_delays(&c, &vec![120.0e-12; c.node_count()], &mut l, &cfg, None);
        let t_fast = timing_view(&c, &fast, &mut l, cfg.load_model, 30e-12).critical_path_delay(&c);
        let t_slow = timing_view(&c, &slow, &mut l, cfg.load_model, 30e-12).critical_path_delay(&c);
        assert!(t_fast < t_slow, "{t_fast:e} vs {t_slow:e}");
    }

    #[test]
    fn vdd_monotonicity_holds_with_multi_vdd() {
        let c = generate::iscas85("c432").unwrap();
        let mut l = lib();
        let mut allowed = AllowedParams::tiny();
        allowed.vdds = vec![0.8, 1.0];
        let cfg = MatchingConfig::new(allowed);
        // Mixed targets to push the matcher around.
        let targets: Vec<f64> = (0..c.node_count())
            .map(|i| 10.0e-12 + (i % 7) as f64 * 15.0e-12)
            .collect();
        let cells = match_delays(&c, &targets, &mut l, &cfg, None);
        assert!(vdd_violations(&c, &cells).is_empty());
    }

    #[test]
    fn chosen_cells_stay_in_allowed_grid() {
        let c = generate::c17();
        let mut l = lib();
        let cfg = MatchingConfig::new(AllowedParams::tiny());
        let cells = match_delays(&c, &vec![20.0e-12; c.node_count()], &mut l, &cfg, None);
        for g in c.gates() {
            assert!(cfg.allowed.contains(cells.get(g).unwrap()));
        }
    }
}
