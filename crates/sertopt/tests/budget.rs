//! Deadline/budget-governed optimization guarantees:
//!
//! * an unbounded budget is bitwise identical to the plain entry point;
//! * an already-expired budget (or a cancelled token) stops every
//!   algorithm at its first loop checkpoint, returning a typed
//!   [`Termination::Interrupted`] with the algorithm's stage name;
//! * an interrupted outcome is still consistent: the never-regress guard
//!   ran, so the returned assignment is at least baseline quality.

use std::time::Duration;

use aserta::{CancelToken, Deadline};
use ser_cells::{CharGrids, Library};
use ser_netlist::generate;
use ser_netlist::govern::InterruptReason;
use ser_spice::Technology;
use sertopt::{
    optimize, Algorithm, AllowedParams, OptimizeRequest, OptimizerConfig, Outcome, Termination,
};

const ALL: [Algorithm; 4] = [
    Algorithm::Sqp,
    Algorithm::CoordinateDescent,
    Algorithm::Anneal,
    Algorithm::Genetic,
];

fn lib() -> Library {
    Library::new(Technology::ptm70(), CharGrids::coarse())
}

fn cfg(algorithm: Algorithm) -> OptimizerConfig {
    let mut cfg = OptimizerConfig::fast();
    cfg.algorithm = algorithm;
    cfg.iterations = 3;
    cfg.allowed = AllowedParams::tiny();
    cfg.aserta.sensitization_vectors = 256;
    cfg.threads = 1;
    cfg
}

fn run_governed(cfg: &OptimizerConfig, deadline: &Deadline) -> Outcome {
    let circuit = generate::c17();
    let mut library = lib();
    let req = OptimizeRequest::new(cfg.clone()).budget(deadline.clone());
    optimize(&circuit, &mut library, &req)
}

fn stage_of(algorithm: Algorithm) -> &'static str {
    match algorithm {
        Algorithm::Sqp => "sqp::iteration",
        Algorithm::CoordinateDescent => "coord::sweep",
        Algorithm::Anneal => "anneal::move",
        Algorithm::Genetic => "genetic::generation",
    }
}

#[test]
fn unbounded_budget_matches_plain_entry_point_bitwise() {
    for algorithm in ALL {
        let c = cfg(algorithm);
        let circuit = generate::c17();
        let mut library = lib();
        let plain = optimize(&circuit, &mut library, &OptimizeRequest::new(c.clone()));
        let governed = run_governed(&c, &Deadline::none());
        assert_eq!(plain.history, governed.history, "{algorithm:?}: history");
        assert_eq!(plain.best_phi, governed.best_phi, "{algorithm:?}: phi");
        assert_eq!(
            plain.optimized.unreliability, governed.optimized.unreliability,
            "{algorithm:?}: U"
        );
        assert_eq!(
            plain.optimized_cells, governed.optimized_cells,
            "{algorithm:?}: cells"
        );
        assert_eq!(
            governed.termination,
            Termination::Completed,
            "{algorithm:?}: unbounded budgets never interrupt"
        );
        assert!(!governed.termination.was_interrupted());
    }
}

#[test]
fn expired_budget_interrupts_every_algorithm_at_its_checkpoint() {
    for algorithm in ALL {
        let c = cfg(algorithm);
        let out = run_governed(&c, &Deadline::within(Duration::ZERO));
        let Termination::Interrupted(i) = out.termination else {
            panic!("{algorithm:?}: an expired budget must interrupt the search");
        };
        assert_eq!(i.stage, stage_of(algorithm), "{algorithm:?}: stage name");
        assert_eq!(i.reason, InterruptReason::DeadlineExpired, "{algorithm:?}");
        // Best-so-far state is still a consistent, validated outcome:
        // the never-regress guard ran after the interruption, so the
        // returned assignment cannot be worse than the baseline.
        assert!(
            out.optimized.cost <= out.baseline.cost,
            "{algorithm:?}: interrupted outcome regressed below the baseline"
        );
        assert!(out.optimized.cost.is_finite(), "{algorithm:?}");
        assert!(
            !out.history.is_empty(),
            "{algorithm:?}: the starting point is always recorded"
        );
        assert_eq!(
            out.best_phi.len(),
            out.best_phi.iter().filter(|p| p.is_finite()).count(),
            "{algorithm:?}: best-so-far phi is finite"
        );
    }
}

#[test]
fn cancelled_token_interrupts_with_a_typed_reason() {
    let token = CancelToken::new();
    token.cancel();
    let c = cfg(Algorithm::Sqp);
    let out = run_governed(&c, &Deadline::none().with_token(token));
    let Termination::Interrupted(i) = out.termination else {
        panic!("a cancelled token must interrupt the search");
    };
    assert_eq!(i.reason, InterruptReason::Cancelled);
    assert_eq!(i.stage, "sqp::iteration");
    assert!(out.optimized.cost <= out.baseline.cost);
}

#[test]
fn generous_budget_completes_and_matches_unbounded_bitwise() {
    // An hour-scale budget never fires on a c17-sized search, so the
    // governed run must be indistinguishable from the unbounded one.
    let c = cfg(Algorithm::CoordinateDescent);
    let unbounded = run_governed(&c, &Deadline::none());
    let generous = run_governed(&c, &Deadline::within(Duration::from_secs(3600)));
    assert_eq!(generous.termination, Termination::Completed);
    assert_eq!(unbounded.history, generous.history);
    assert_eq!(unbounded.best_phi, generous.best_phi);
    assert_eq!(
        unbounded.optimized.unreliability,
        generous.optimized.unreliability
    );
    assert_eq!(unbounded.optimized_cells, generous.optimized_cells);
}
