//! Optimizer determinism and engine-equivalence guarantees:
//!
//! * each of the four algorithms with a fixed seed produces an identical
//!   [`Outcome`] across repeated runs;
//! * outcomes are identical for every worker-thread count (the batched
//!   evaluation path is order-independent by construction);
//! * the incremental session engine and the fresh-analysis-per-move
//!   oracle produce identical outcomes.

use ser_cells::{CharGrids, Library};
use ser_netlist::generate;
use ser_spice::Technology;
use sertopt::{
    optimize, Algorithm, AllowedParams, EvalStrategy, OptimizeRequest, OptimizerConfig, Outcome,
};

fn lib() -> Library {
    Library::new(Technology::ptm70(), CharGrids::coarse())
}

fn cfg(algorithm: Algorithm) -> OptimizerConfig {
    let mut cfg = OptimizerConfig::fast();
    cfg.algorithm = algorithm;
    cfg.iterations = 3;
    cfg.allowed = AllowedParams::tiny();
    cfg.aserta.sensitization_vectors = 256;
    cfg.threads = 1;
    cfg
}

fn run(cfg: &OptimizerConfig) -> Outcome {
    let circuit = generate::c17();
    let mut library = lib();
    optimize(&circuit, &mut library, &OptimizeRequest::new(cfg.clone()))
}

#[test]
#[allow(deprecated)]
fn deprecated_optimize_shims_match_the_request_entry_point() {
    let c = cfg(Algorithm::CoordinateDescent);
    let circuit = generate::c17();
    let via_request = run(&c);
    let mut library = lib();
    let via_shim = sertopt::optimize_circuit(&circuit, &mut library, &c);
    assert_outcomes_identical(&via_request, &via_shim, "optimize_circuit shim");
    let mut library = lib();
    let via_budget_shim = sertopt::optimize_circuit_with_budget(
        &circuit,
        &mut library,
        &c,
        &aserta::Deadline::none(),
    );
    assert_outcomes_identical(&via_request, &via_budget_shim, "with_budget shim");
}

fn assert_outcomes_identical(a: &Outcome, b: &Outcome, what: &str) {
    assert_eq!(a.history, b.history, "{what}: history");
    assert_eq!(a.best_phi, b.best_phi, "{what}: best phi");
    assert_eq!(a.evaluations, b.evaluations, "{what}: evaluation count");
    assert_eq!(
        a.optimized.unreliability, b.optimized.unreliability,
        "{what}: U"
    );
    assert_eq!(a.optimized.delay, b.optimized.delay, "{what}: delay");
    assert_eq!(a.optimized.energy, b.optimized.energy, "{what}: energy");
    assert_eq!(a.optimized.area, b.optimized.area, "{what}: area");
    assert_eq!(a.optimized.cost, b.optimized.cost, "{what}: cost");
    assert_eq!(
        a.optimized_cells, b.optimized_cells,
        "{what}: optimized cells"
    );
}

#[test]
fn every_algorithm_is_reproducible_at_fixed_seed() {
    for algorithm in [
        Algorithm::Sqp,
        Algorithm::CoordinateDescent,
        Algorithm::Anneal,
        Algorithm::Genetic,
    ] {
        let c = cfg(algorithm);
        let first = run(&c);
        let second = run(&c);
        assert_outcomes_identical(&first, &second, &format!("{algorithm:?}"));
    }
}

#[test]
fn outcomes_are_thread_count_invariant() {
    // The batched evaluators (SQP probes, GA broods) spread work over
    // replicas; every thread count must land on the same outcome.
    for algorithm in [Algorithm::Sqp, Algorithm::Genetic] {
        let mut c = cfg(algorithm);
        c.threads = 1;
        let one = run(&c);
        c.threads = 3;
        let three = run(&c);
        c.threads = 8;
        let eight = run(&c);
        assert_outcomes_identical(&one, &three, &format!("{algorithm:?} 1v3 threads"));
        assert_outcomes_identical(&one, &eight, &format!("{algorithm:?} 1v8 threads"));
    }
}

#[test]
fn incremental_engine_matches_fresh_per_move_oracle() {
    for algorithm in [
        Algorithm::Sqp,
        Algorithm::CoordinateDescent,
        Algorithm::Anneal,
        Algorithm::Genetic,
    ] {
        let mut c = cfg(algorithm);
        c.eval = EvalStrategy::Incremental;
        let incremental = run(&c);
        c.eval = EvalStrategy::FreshPerMove;
        let fresh = run(&c);
        assert_outcomes_identical(
            &incremental,
            &fresh,
            &format!("{algorithm:?} incremental vs fresh"),
        );
    }
}
