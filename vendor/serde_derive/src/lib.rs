//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` implemented with a hand-rolled token parser
//! (the environment has no `syn`/`quote`). Supports exactly the shapes
//! this workspace derives on:
//!
//! * structs with named fields (honouring `#[serde(skip)]` per field);
//! * tuple structs (honouring `#[serde(transparent)]`);
//! * enums with unit variants only.
//!
//! Generated impls target the sibling `serde` shim's value-tree traits.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Enum(Vec<String>),
}

struct Container {
    name: String,
    transparent: bool,
    shape: Shape,
}

/// Consumes leading `#[...]` attributes, returning whether any of them
/// is a `serde(...)` attribute containing the given word.
fn eat_attrs(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>, word: &str) -> bool {
    let mut found = false;
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.next() {
                    let s = g.stream().to_string();
                    if s.starts_with("serde") && s.contains(word) {
                        found = true;
                    }
                } else {
                    panic!("malformed attribute");
                }
            }
            _ => return found,
        }
    }
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn eat_vis(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        iter.next();
        if matches!(
            iter.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            iter.next();
        }
    }
}

fn parse_container(input: TokenStream) -> Container {
    let mut iter = input.into_iter().peekable();
    let transparent = eat_attrs(&mut iter, "transparent");
    eat_vis(&mut iter);
    let kw = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    let body = match iter.next() {
        Some(TokenTree::Group(g)) => g,
        other => panic!(
            "derive shim does not support generics or unit structs: \
             unexpected {other:?} after `{name}`"
        ),
    };
    let shape = match (kw.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => Shape::Named(parse_named_fields(body.stream())),
        ("struct", Delimiter::Parenthesis) => Shape::Tuple(count_tuple_fields(body.stream())),
        ("enum", Delimiter::Brace) => Shape::Enum(parse_unit_variants(body.stream())),
        (kw, d) => panic!("unsupported item `{kw}` with delimiter {d:?}"),
    };
    Container {
        name,
        transparent,
        shape,
    }
}

/// Skips tokens of one type expression, up to (and consuming) a
/// top-level comma. Tracks `<`/`>` depth; commas inside parenthesized or
/// bracketed groups are invisible because groups are single tokens.
fn skip_type(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0i32;
    while let Some(tt) = iter.peek() {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    iter.next();
                    return;
                }
                _ => {}
            }
        }
        iter.next();
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let mut iter = ts.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let skip = eat_attrs(&mut iter, "skip");
        eat_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => return fields,
            other => panic!("expected field name, found {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&mut iter);
        fields.push(Field { name, skip });
    }
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut iter = ts.into_iter().peekable();
    let mut count = 0;
    while iter.peek().is_some() {
        eat_attrs(&mut iter, "\u{0}");
        eat_vis(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        skip_type(&mut iter);
        count += 1;
    }
    count
}

fn parse_unit_variants(ts: TokenStream) -> Vec<String> {
    let mut iter = ts.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        eat_attrs(&mut iter, "\u{0}");
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => return variants,
            other => panic!("expected variant name, found {other:?}"),
        };
        match iter.next() {
            None => {
                variants.push(name);
                return variants;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(name),
            Some(TokenTree::Group(_)) => {
                panic!("derive shim supports unit enum variants only (variant `{name}`)")
            }
            other => panic!("unexpected token after variant `{name}`: {other:?}"),
        }
    }
}

/// Derives the value-tree `serde::Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    let name = &c.name;
    let body = match &c.shape {
        Shape::Named(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if c.transparent {
                assert!(
                    live.len() == 1,
                    "#[serde(transparent)] needs exactly one unskipped field"
                );
                format!("::serde::Serialize::serialize(&self.{})", live[0].name)
            } else {
                let mut pushes = String::new();
                for f in &live {
                    pushes.push_str(&format!(
                        "__obj.push((::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::serialize(&self.{0})));",
                        f.name
                    ));
                }
                format!(
                    "let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                     = ::std::vec::Vec::new(); {pushes} ::serde::Value::Object(__obj)"
                )
            }
        }
        Shape::Tuple(n) => {
            if c.transparent || *n == 1 {
                "::serde::Serialize::serialize(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(","))
            }
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::String(::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!("match *self {{ {} }}", arms.join(""))
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{ \
           fn serialize(&self) -> ::serde::Value {{ {body} }} \
         }}"
    );
    out.parse().expect("generated Serialize impl parses")
}

/// Derives the value-tree `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    let name = &c.name;
    let body = match &c.shape {
        Shape::Named(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if c.transparent {
                assert!(
                    live.len() == 1,
                    "#[serde(transparent)] needs exactly one unskipped field"
                );
                let mut inits = String::new();
                for f in fields {
                    if f.skip {
                        inits.push_str(&format!("{}: ::std::default::Default::default(),", f.name));
                    } else {
                        inits.push_str(&format!(
                            "{}: ::serde::Deserialize::deserialize(__v)?,",
                            f.name
                        ));
                    }
                }
                format!("::std::result::Result::Ok({name} {{ {inits} }})")
            } else {
                let mut inits = String::new();
                for f in fields {
                    if f.skip {
                        inits.push_str(&format!("{}: ::std::default::Default::default(),", f.name));
                    } else {
                        inits.push_str(&format!(
                            "{0}: match ::serde::__find(__obj, \"{0}\") {{ \
                               ::std::option::Option::Some(__x) => \
                                 ::serde::Deserialize::deserialize(__x) \
                                   .map_err(|__e| __e.context(\"{name}.{0}\"))?, \
                               ::std::option::Option::None => \
                                 return ::std::result::Result::Err(\
                                   ::serde::Error::missing_field(\"{name}\", \"{0}\")), \
                             }},",
                            f.name
                        ));
                    }
                }
                format!(
                    "let __obj = __v.as_object().ok_or_else(|| \
                       ::serde::Error::custom(format!(\
                         \"expected object for `{name}`, found {{}}\", __v.kind())))?; \
                     ::std::result::Result::Ok({name} {{ {inits} }})"
                )
            }
        }
        Shape::Tuple(n) => {
            if c.transparent || *n == 1 {
                format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))"
                )
            } else {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::deserialize(&__a[{i}])?"))
                    .collect();
                format!(
                    "let __a = __v.as_array().ok_or_else(|| \
                       ::serde::Error::custom(\"expected array for `{name}`\"))?; \
                     if __a.len() != {n} {{ \
                       return ::std::result::Result::Err(::serde::Error::custom(\
                         format!(\"expected {n} elements for `{name}`, found {{}}\", __a.len()))); \
                     }} \
                     ::std::result::Result::Ok({name}({items}))",
                    items = items.join(",")
                )
            }
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "match __v.as_str() {{ \
                   ::std::option::Option::Some(__s) => match __s {{ \
                     {} \
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                       format!(\"unknown variant `{{__other}}` of `{name}`\"))), \
                   }}, \
                   ::std::option::Option::None => ::std::result::Result::Err(\
                     ::serde::Error::custom(format!(\
                       \"expected string variant for `{name}`, found {{}}\", __v.kind()))), \
                 }}",
                arms.join("")
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn deserialize(__v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    );
    out.parse().expect("generated Deserialize impl parses")
}
