//! Offline, API-compatible shim for the parts of `serde` this workspace
//! uses: the [`Serialize`] and [`Deserialize`] traits together with
//! same-named derive macros (re-exported from `serde_derive`), honouring
//! the `#[serde(transparent)]` and `#[serde(skip)]` attributes.
//!
//! Unlike real serde's zero-copy visitor architecture, this shim routes
//! everything through an owned JSON-shaped [`Value`] tree: `serialize`
//! produces a [`Value`], `deserialize` consumes one. `serde_json` (the
//! sibling shim) renders and parses that tree. This is dramatically
//! simpler and fully sufficient for the workspace's persistence needs
//! (cell-library JSON files and CLI reports).
//!
//! # Example
//!
//! ```
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Debug, PartialEq, Serialize, Deserialize)]
//! struct Point {
//!     x: f64,
//!     label: String,
//! }
//!
//! let p = Point { x: 1.5, label: "a".to_string() };
//! let v = serde::Serialize::serialize(&p);
//! let back = <Point as serde::Deserialize>::deserialize(&v).unwrap();
//! assert_eq!(p, back);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON number: signed, unsigned or floating point, so that integer
/// round-trips are exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The number as `f64` (lossy for 64-bit integers beyond 2^53).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(u) => u as f64,
            Number::NegInt(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// The number as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(u) => Some(u),
            Number::NegInt(i) => u64::try_from(i).ok(),
            Number::Float(_) => None,
        }
    }

    /// The number as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(u) => i64::try_from(u).ok(),
            Number::NegInt(i) => Some(i),
            Number::Float(_) => None,
        }
    }
}

/// An owned JSON-shaped document tree. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// A JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// A one-word description of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error: a message plus an optional path
/// context accumulated by derived impls.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with an arbitrary message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// A "missing field" error, matching serde's wording closely enough.
    pub fn missing_field(container: &str, field: &str) -> Self {
        Error {
            msg: format!("missing field `{field}` while deserializing `{container}`"),
        }
    }

    /// Wraps the error with a `container.field` breadcrumb.
    #[must_use]
    pub fn context(self, at: &str) -> Self {
        Error {
            msg: format!("{at}: {}", self.msg),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Looks up a key in an object's entry list. Used by derived impls.
#[doc(hidden)]
pub fn __find<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the tree's shape does not match.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// --- identity ---------------------------------------------------------

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// --- primitives -------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(n) => n,
                    other => {
                        return Err(Error::custom(format!(
                            concat!("expected ", stringify!($t), ", found {}"),
                            other.kind()
                        )))
                    }
                };
                n.as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| {
                        Error::custom(concat!("number out of range for ", stringify!($t)))
                    })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let i = *self as i64;
                if i < 0 {
                    Value::Number(Number::NegInt(i))
                } else {
                    Value::Number(Number::PosInt(i as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(n) => n,
                    other => {
                        return Err(Error::custom(format!(
                            concat!("expected ", stringify!($t), ", found {}"),
                            other.kind()
                        )))
                    }
                };
                n.as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| {
                        Error::custom(concat!("number out of range for ", stringify!($t)))
                    })
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let f = f64::from(*self);
                // Match serde_json: non-finite floats serialize as null.
                if f.is_finite() {
                    Value::Number(Number::Float(f))
                } else {
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    // Accept the null a non-finite float serialized to.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::custom(format!(
                        concat!("expected ", stringify!($t), ", found {}"),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected single-char string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

// --- containers -------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(Deserialize::deserialize).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::deserialize(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::custom(format!("expected {N} elements, found {}", items.len())))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Deserialize::deserialize(other).map(Some),
        }
    }
}

impl<K: Serialize + ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: Serialize + ToString, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($t:ident . $idx:tt),+ ; $len:literal)),* $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| {
                    Error::custom(format!("expected array of {}, found {}", $len, v.kind()))
                })?;
                if a.len() != $len {
                    return Err(Error::custom(format!(
                        "expected array of {}, found {} elements",
                        $len,
                        a.len()
                    )));
                }
                Ok(($(<$t as Deserialize>::deserialize(&a[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple!(
    (A.0; 1),
    (A.0, B.1; 2),
    (A.0, B.1, C.2; 3),
    (A.0, B.1, C.2, D.3; 4),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u32::deserialize(&3u32.serialize()).unwrap(), 3);
        assert_eq!(i64::deserialize(&(-9i64).serialize()).unwrap(), -9);
        assert_eq!(f64::deserialize(&1.25f64.serialize()).unwrap(), 1.25);
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u8>::deserialize(&vec![1u8, 2, 3].serialize()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(
            Option::<u8>::deserialize(&None::<u8>.serialize()).unwrap(),
            None
        );
        assert_eq!(
            <(u8, f64)>::deserialize(&(7u8, 0.5f64).serialize()).unwrap(),
            (7, 0.5)
        );
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(u32::deserialize(&Value::String("x".into())).is_err());
        assert!(bool::deserialize(&Value::Null).is_err());
        assert!(<(u8, u8)>::deserialize(&vec![1u8].serialize()).is_err());
    }
}
