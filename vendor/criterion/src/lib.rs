//! Offline, API-compatible shim for the parts of `criterion` this
//! workspace's benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with `sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), [`Bencher::iter`], [`BenchmarkId`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is a simple calibrated wall-clock mean (no outlier
//! statistics, no plots): each benchmark is warmed up, then timed over
//! `sample_size` batches and reported as mean ns/iter on stdout.
//!
//! # Example
//!
//! ```
//! use criterion::{criterion_group, criterion_main, Criterion};
//!
//! fn bench_add(c: &mut Criterion) {
//!     c.bench_function("add", |b| b.iter(|| std::hint::black_box(1 + 2)));
//! }
//!
//! criterion_group!(benches, bench_add);
//! # fn main() {}
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the displayed parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// Times one benchmark body.
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
}

impl Bencher {
    /// Runs `body` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up + calibration: find an iteration count that takes
        // roughly a millisecond, so cheap kernels aren't all timer noise.
        let mut iters_per_sample: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(body());
            }
            let elapsed = t0.elapsed();
            if elapsed > Duration::from_millis(1) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(body());
            }
            total += t0.elapsed();
            total_iters += iters_per_sample;
        }
        self.mean_ns = total.as_secs_f64() * 1e9 / total_iters as f64;
    }
}

fn run_one(name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        mean_ns: f64::NAN,
    };
    f(&mut b);
    if b.mean_ns.is_nan() {
        println!("{name:<50} (no measurement)");
    } else if b.mean_ns >= 1e6 {
        println!("{name:<50} time: {:>12.3} ms/iter", b.mean_ns / 1e6);
    } else if b.mean_ns >= 1e3 {
        println!("{name:<50} time: {:>12.3} µs/iter", b.mean_ns / 1e3);
    } else {
        println!("{name:<50} time: {:>12.1} ns/iter", b.mean_ns);
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.into_name(), self.default_samples, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            samples: 10,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_name());
        run_one(&name, self.samples, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into_name());
        run_one(&name, self.samples, |b| f(b, input));
        self
    }

    /// Ends the group. (Statistics finalization in real criterion; a
    /// no-op here.)
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        group.bench_with_input(BenchmarkId::from_parameter("p"), &3, |b, &x| {
            b.iter(|| black_box(x + 1))
        });
        group.finish();
    }
}
