//! Offline, API-compatible shim for the parts of the `rand` crate this
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the
//! [`RngExt`] sampling methods (`random`, `random_range`, `random_bool`)
//! and [`seq::SliceRandom::shuffle`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64, so streams are deterministic in the seed and of high
//! statistical quality. This shim exists because the build environment
//! has no registry access; the surface mirrors `rand` 0.10 so the real
//! crate can be swapped back in without touching call sites.
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{RngExt, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: f64 = rng.random();
//! assert!((0.0..1.0).contains(&x));
//! let k = rng.random_range(0..10usize);
//! assert!(k < 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// A source of 64-bit random words. Minimal analogue of `rand::RngCore`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed. Only the `seed_from_u64`
/// entry point of `rand::SeedableRng` is provided.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it with
    /// SplitMix64 as the real `rand` does.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step: used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from the generator's raw output.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Half-open ranges a generator can sample from uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching `rand`.
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Output;
}

/// Rejection-sampled uniform integer in `[0, span)`: no modulo bias.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {:?}..{:?}",
                    self.start,
                    self.end
                );
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "cannot sample empty range {}..{}",
            self.start,
            self.end
        );
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        assert!(
            self.start < self.end,
            "cannot sample empty range {}..{}",
            self.start,
            self.end
        );
        let u: f32 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`]. Mirrors the `rand` 0.10 `RngExt` trait (`Rng` in 0.9).
pub trait RngExt: RngCore {
    /// A uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        Standard::sample(self)
    }

    /// A value uniformly distributed over `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Unlike `rand`'s ChaCha12-backed `StdRng` this is not
    /// cryptographically secure, which is irrelevant for circuit
    /// stimulus; it is fast and passes stringent statistical test
    /// batteries.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero words from any seed, but keep the guard.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..i + 1).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let k = rng.random_range(3..17usize);
            assert!((3..17).contains(&k));
            let x = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let s = rng.random_range(-5i64..-1);
            assert!((-5..-1).contains(&s));
        }
    }

    #[test]
    fn random_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
