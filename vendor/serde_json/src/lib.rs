//! Offline, API-compatible shim for the parts of `serde_json` this
//! workspace uses: [`to_string`], [`to_string_pretty`], [`from_str`],
//! [`Value`], [`Result`] and the [`json!`] macro.
//!
//! It renders and parses the JSON-shaped [`serde::Value`] tree produced
//! by the sibling `serde` shim. Numbers keep their integer/float
//! distinction; floats render with Rust's shortest round-trip formatting.
//!
//! # Example
//!
//! ```
//! let doc = serde_json::json!({
//!     "name": "c17",
//!     "gates": [1, 2, 3],
//!     "u": 0.25,
//! });
//! let text = serde_json::to_string(&doc).unwrap();
//! let back: serde_json::Value = serde_json::from_str(&text).unwrap();
//! assert_eq!(doc, back);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

pub use serde::{Error, Number, Value};

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` into a [`Value`] tree. Used by the [`json!`] macro.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Never fails for this shim's data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` as a 2-space-indented JSON string.
///
/// # Errors
///
/// Never fails for this shim's data model.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON document and deserializes it into `T`.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON, trailing garbage, or a shape
/// mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::deserialize(&v)
}

/// Builds a [`Value`] from a JSON-ish literal. Supports flat object and
/// array literals whose values are Rust expressions (anything
/// implementing `serde::Serialize`), which covers this workspace's uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$val) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// --- rendering --------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, level, items.len(), '[', ']', |out, lvl| {
            for (i, item) in items.iter().enumerate() {
                sep(out, indent, lvl, i == 0);
                write_value(out, item, indent, lvl);
            }
        }),
        Value::Object(entries) => {
            write_seq(out, indent, level, entries.len(), '{', '}', |out, lvl| {
                for (i, (k, item)) in entries.iter().enumerate() {
                    sep(out, indent, lvl, i == 0);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, item, indent, lvl);
                }
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    len: usize,
    open: char,
    close: char,
    body: impl FnOnce(&mut String, usize),
) {
    out.push(open);
    if len > 0 {
        body(out, level + 1);
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * level));
        }
    }
    out.push(close);
}

fn sep(out: &mut String, indent: Option<usize>, level: usize, first: bool) {
    if !first {
        out.push(',');
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * level));
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::PosInt(u) => {
            let _ = write!(out, "{u}");
        }
        Number::NegInt(i) => {
            let _ = write!(out, "{i}");
        }
        Number::Float(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest string that round-trips.
                let _ = write!(out, "{f:?}");
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parsing ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::custom(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::custom(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::custom(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error::custom("invalid \\u escape"))?);
                            // parse_hex4 advanced past the digits; undo the
                            // generic advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(Error::custom("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // slicing on char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::custom(format!("invalid number at byte {start}")));
        }
        let n = if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                stripped
                    .parse::<u64>()
                    .ok()
                    .and_then(|u| i64::try_from(u).ok())
                    .map(|i| Number::NegInt(-i))
            } else {
                text.parse::<u64>().ok().map(Number::PosInt)
            }
        } else {
            None
        };
        let n = match n {
            Some(n) => n,
            None => Number::Float(
                text.parse::<f64>()
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
            ),
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let doc = json!({
            "s": "he\"llo\nworld",
            "i": 42,
            "neg": -7,
            "f": 1.5e-15,
            "arr": [true, false],
            "none": Option::<u8>::None,
        });
        let text = to_string(&doc).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(doc, back);
        let pretty = to_string_pretty(&doc).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(doc, back2);
    }

    #[test]
    fn float_precision_survives() {
        let xs = [1.0e-300, std::f64::consts::PI, 2.5e17, -0.1];
        for x in xs {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(x, back, "{text}");
        }
    }

    #[test]
    fn integers_stay_integers() {
        let text = to_string(&u64::MAX).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, u64::MAX);
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str("\"a\\u00e9\\ud83d\\ude00b\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "aé😀b");
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"abc").is_err());
    }
}
