//! Offline, API-compatible shim for the parts of `proptest` this
//! workspace uses: the [`proptest!`] macro, [`strategy::Strategy`] with
//! [`strategy::Strategy::prop_map`], range and tuple strategies,
//! [`collection::vec`], [`ProptestConfig`] and the `prop_assert*`
//! macros.
//!
//! Differences from real proptest: cases are generated from a seed
//! derived deterministically from the test name (fully reproducible
//! runs), and failing cases are reported but **not shrunk**.
//!
//! # Example
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(32))]
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```
//!
//! (In a real test module each function also carries `#[test]`, which the
//! macro passes through.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Test-case plumbing used by the generated test bodies.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::fmt;

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// The deterministic generator driving case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds the generator from the test's name, so every test has
        /// its own reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::{RngExt, SampleRange};
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy producing `f` applied to this strategy's values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: Clone,
        Range<T>: SampleRange<Output = T>,
    {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            rng.random_range(self.clone())
        }
    }

    macro_rules! impl_strategy_tuple {
        ($(($($t:ident . $idx:tt),+)),* $(,)?) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_strategy_tuple!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
    );

    /// A strategy for `Vec`s with sizes drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: Range<usize>,
        pub(crate) _marker: PhantomData<()>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.size.clone());
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A strategy for `Vec`s of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size,
            _marker: PhantomData,
        }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines deterministic property tests. See the crate docs for the
/// supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __e
                    );
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`: {:?} != {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {:?} != {:?}: {}",
                    __l,
                    __r,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`: both {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l != *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: both {:?}: {}", __l, format!($($fmt)+)),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn prop_map_applies(x in arb_even()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_sizes_respect_range(v in crate::collection::vec(0u32..5, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn tuples_compose(t in (0u32..4, 0u32..4, 0u32..4, 0u32..4)) {
            let (a, b, c, d) = t;
            prop_assert!(a < 4 && b < 4 && c < 4 && d < 4);
        }
    }

    #[test]
    fn failing_case_panics_with_message() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("always_fails"), "{msg}");
    }
}
