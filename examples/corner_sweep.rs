//! Running a multi-corner scenario sweep through the warm session
//! engine.
//!
//! Sweeps a VDD × Vth × strike-charge grid over the 32-bit SEC circuit
//! twice — once fresh (a full `analyze_fresh`, including the Monte-Carlo
//! `P_ij` re-estimate, per corner) and once through a shared
//! `AnalysisSession` that applies each corner as a batch of per-gate
//! deltas — then prints the identical corner table and the wall-time
//! ratio.
//!
//! ```text
//! cargo run --release --example corner_sweep
//! ```

use ser_bench::corners::{sweep_fresh, sweep_session, CornerGrid};
use ser_bench::timed;
use soft_error::aserta::{AsertaConfig, CircuitCells};
use soft_error::cells::{CharGrids, Library};
use soft_error::netlist::generate;
use soft_error::spice::Technology;

fn main() {
    let circuit = generate::sec32("sec32");
    let base = CircuitCells::nominal(&circuit);
    let mut cfg = AsertaConfig::fast();
    cfg.sensitization_vectors = 2048;
    let grid = CornerGrid::table1_style();
    let corners = grid.corners();
    println!(
        "sweeping {} corners ({} VDD x {} Vth x {} charges) over {} ({} gates)\n",
        corners.len(),
        grid.vdds.len(),
        grid.vths.len(),
        grid.charges.len(),
        circuit.name(),
        circuit.gate_count()
    );

    // Warm the library once (corner variants plus the base point the
    // session boots from) so neither engine times first-touch cell
    // characterization.
    let mut library = Library::new(Technology::ptm70(), CharGrids::coarse());
    if let Err(e) = soft_error::aserta::try_analyze_fresh(&circuit, &base, &mut library, &cfg) {
        eprintln!("error: warming the library: {e}");
        std::process::exit(1);
    }
    sweep_fresh(&circuit, &base, &mut library, &cfg, &corners);
    let session_library = library.clone();

    let (fresh, fresh_s) = timed(|| sweep_fresh(&circuit, &base, &mut library, &cfg, &corners));
    let (warm, session_s) = timed(|| {
        // threads = 0: one replica per available core, corners dealt
        // round-robin; the result is identical for every thread count.
        sweep_session(&circuit, &base, session_library, &cfg, &corners, 0)
    });
    assert_eq!(fresh, warm, "the engines agree bitwise");

    println!(
        "{:<28} {:>14} {:>12}",
        "corner", "U (size*s)", "T_crit (ps)"
    );
    for point in &warm {
        println!(
            "{:<28} {:>14.3e} {:>12.2}",
            point.corner.label(),
            point.unreliability,
            point.critical_delay * 1e12
        );
    }
    println!(
        "\nfresh {:.3} s vs session {:.3} s -> {:.1}x speedup",
        fresh_s,
        session_s,
        fresh_s / session_s
    );
}
