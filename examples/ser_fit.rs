//! FIT-rate estimation over a particle-charge spectrum — the paper's
//! stated future-work extension ("look-up tables for different amounts of
//! injected charge"), implemented: soft-error rate in FIT before and
//! after SERTOPT hardening.
//!
//! ```text
//! cargo run --release --example ser_fit -- c432
//! ```

use soft_error::aserta::ser::{rank_by_fit, soft_error_rate, SerModel};
use soft_error::aserta::{AsertaConfig, CircuitCells};
use soft_error::cells::{CharGrids, Library};
use soft_error::logicsim::sensitize::sensitization_probabilities;
use soft_error::netlist::generate;
use soft_error::sertopt::{optimize, OptimizeRequest, OptimizerConfig};
use soft_error::spice::Technology;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "c432".to_owned());
    let circuit = generate::iscas85(&name).unwrap_or_else(|| {
        eprintln!("error: loading circuit: `{name}` is not an ISCAS'85 benchmark name");
        std::process::exit(1);
    });
    let mut library = Library::new(Technology::ptm70(), CharGrids::standard());
    let cfg = AsertaConfig::default();
    let model = SerModel::default();

    let pij = sensitization_probabilities(&circuit, cfg.sensitization_vectors, cfg.seed);
    let baseline = CircuitCells::nominal(&circuit);
    let before = soft_error_rate(&circuit, &baseline, &mut library, &pij, &cfg, &model);
    println!("{name}: nominal SER = {:.3} FIT", before.fit);
    println!("worst 5 gates by FIT:");
    for (id, fit) in rank_by_fit(&before, &circuit).into_iter().take(5) {
        println!("  {:<6} {:.4} FIT", circuit.node(id).name, fit);
    }

    let mut opt_cfg = OptimizerConfig::fast();
    opt_cfg.iterations = 10;
    let outcome = optimize(&circuit, &mut library, &OptimizeRequest::new(opt_cfg));
    let after = soft_error_rate(
        &circuit,
        &outcome.optimized_cells,
        &mut library,
        &pij,
        &cfg,
        &model,
    );
    println!(
        "\nafter SERTOPT: SER = {:.3} FIT ({:+.1}%)",
        after.fit,
        100.0 * (after.fit - before.fit) / before.fit
    );
}
