//! Analyze any ISCAS'85 benchmark (or your own `.bench` file) with
//! ASERTA: unreliability, soft spots, timing, and — for small circuits —
//! validation against the transistor-level reference.
//!
//! ```text
//! cargo run --release --example analyze_benchmark -- c432
//! cargo run --release --example analyze_benchmark -- path/to/circuit.bench
//! cargo run --release --example analyze_benchmark -- c432 --validate
//! ```

use std::fs;

use soft_error::aserta::{report, try_analyze_fresh, validate, AsertaConfig, CircuitCells};
use soft_error::cells::{CharGrids, Library};
use soft_error::netlist::{bench_format, generate, stats::CircuitStats, Circuit};
use soft_error::spice::Technology;

fn die(context: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("error: {context}: {err}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("c432");
    let do_validate = args.iter().any(|a| a == "--validate");

    let circuit: Circuit = if name.ends_with(".bench") {
        let text = fs::read_to_string(name).unwrap_or_else(|e| die(&format!("reading {name}"), e));
        bench_format::parse(&text, name).unwrap_or_else(|e| die(&format!("parsing {name}"), e))
    } else {
        generate::iscas85(name).unwrap_or_else(|| {
            die(
                "loading circuit",
                format!("`{name}` is not an ISCAS'85 name (c17, c432, …) or a .bench path"),
            )
        })
    };

    println!("{}", CircuitStats::compute_fast(&circuit));

    let tech = Technology::ptm70();
    let mut library = Library::new(tech.clone(), CharGrids::standard());
    let cells = CircuitCells::nominal(&circuit);
    let cfg = AsertaConfig::default();

    let (rep, secs) = {
        let t0 = std::time::Instant::now();
        let r = try_analyze_fresh(&circuit, &cells, &mut library, &cfg)
            .unwrap_or_else(|e| die(&format!("analyzing {name}"), e));
        (r, t0.elapsed().as_secs_f64())
    };
    println!("\nASERTA finished in {secs:.2} s");
    println!("unreliability U = {:.4e}", rep.unreliability);
    println!(
        "critical path    = {:.1} ps",
        rep.timing.critical_path_delay(&circuit) * 1e12
    );
    println!();
    println!(
        "{}",
        report::format_ranked_table(
            &circuit,
            "top 10 soft spots",
            &rep.per_gate_unreliability,
            10
        )
    );

    if do_validate {
        println!("validating against the transistor-level reference (this is the slow part)…");
        let r =
            validate::correlate_with_reference(&tech, &circuit, &cells, &mut library, &cfg, 25, 5);
        println!(
            "ASERTA vs reference correlation over {} near-PO nodes: {:.3}",
            r.nodes.len(),
            r.correlation
        );
    }
}
