//! Characterize a full cell library by transistor-level simulation and
//! persist it to JSON — the paper's offline "SPICE look-up table"
//! construction step.
//!
//! ```text
//! cargo run --release --example characterize_library -- /tmp/ptm70_cells.json
//! ```

use soft_error::cells::{CharGrids, Library, LibrarySpec};
use soft_error::netlist::GateKind;
use soft_error::spice::units::{FC, FF, PS};
use soft_error::spice::Technology;

fn die(context: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("error: {context}: {err}");
    std::process::exit(1);
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/ptm70_cells.json".to_owned());

    let tech = Technology::ptm70();
    let mut library = Library::new(tech, CharGrids::standard());

    let spec = LibrarySpec {
        kinds_fanins: vec![
            (GateKind::Not, 1),
            (GateKind::Buf, 1),
            (GateKind::Nand, 2),
            (GateKind::Nand, 3),
            (GateKind::Nor, 2),
            (GateKind::And, 2),
            (GateKind::Or, 2),
            (GateKind::Xor, 2),
        ],
        sizes: vec![1.0, 2.0, 4.0, 8.0],
        lengths_nm: vec![70.0, 100.0, 150.0, 250.0, 300.0],
        vdds: vec![0.8, 1.0, 1.2],
        vths: vec![0.1, 0.2, 0.3],
    };
    println!(
        "characterizing {} templates x {} variants…",
        spec.kinds_fanins.len(),
        spec.sizes.len() * spec.lengths_nm.len() * spec.vdds.len() * spec.vths.len()
    );
    let t0 = std::time::Instant::now();
    let added = library.characterize_spec(&spec, 0);
    println!("{added} cells in {:.1} s", t0.elapsed().as_secs_f64());

    // Peek at one cell the way ASERTA does.
    let nominal = soft_error::spice::GateParams::new(GateKind::Nand, 2);
    let cell = library.get_or_characterize(&nominal);
    println!("\nNAND2 size 1, L 70 nm, 1 V, 0.2 V:");
    println!("  input cap        = {:.3} fF", cell.input_cap / FF);
    println!(
        "  delay @2fF/20ps  = {:.1} ps",
        cell.delay_at(2.0 * FF, 20.0 * PS) / PS
    );
    println!(
        "  glitch @2fF/16fC = {:.1} ps",
        cell.glitch_width_at(2.0 * FF, 16.0 * FC) / PS
    );
    println!("  leakage power    = {:.2} nW", cell.leak_power * 1e9);

    library
        .save(&path)
        .unwrap_or_else(|e| die(&format!("saving {path}"), e));
    let reloaded = Library::load(&path).unwrap_or_else(|e| die(&format!("reloading {path}"), e));
    println!(
        "\nsaved {} cells to {path} and reloaded {} — round trip OK",
        library.len(),
        reloaded.len()
    );
}
