//! Run the full SERTOPT flow on a benchmark and inspect what it did:
//! metric ratios, the cost trace, and how the optimizer re-assigned
//! sizes/lengths/VDD/Vth across logic depth.
//!
//! ```text
//! cargo run --release --example optimize_circuit -- c432 sqp
//! cargo run --release --example optimize_circuit -- c499 anneal
//! ```
//!
//! The optimizer's inner loop runs on the incremental
//! [`AnalysisSession`] engine by default (`OptimizerConfig::eval`): each
//! candidate is diffed against the previous one and only the invalidated
//! cones/rows are re-derived, with independent candidates batched across
//! `OptimizerConfig::threads` workers. After the run, the same session
//! idea is demonstrated directly: the optimized assignment is replayed
//! onto a fresh session one delta at a time to show how little work each
//! move costs.

use std::collections::BTreeMap;

use soft_error::aserta::AnalysisSession;
use soft_error::cells::{CharGrids, Library};
use soft_error::netlist::{generate, topo};
use soft_error::sertopt::{optimize, Algorithm, AllowedParams, OptimizeRequest, OptimizerConfig};
use soft_error::spice::Technology;

fn die(context: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("error: {context}: {err}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("c432");
    let algo = match args.get(2).map(String::as_str) {
        Some("coord") => Algorithm::CoordinateDescent,
        Some("anneal") => Algorithm::Anneal,
        Some("genetic") => Algorithm::Genetic,
        _ => Algorithm::Sqp,
    };

    let circuit = generate::iscas85(name).unwrap_or_else(|| {
        die(
            "loading circuit",
            format!("`{name}` is not an ISCAS'85 benchmark name"),
        )
    });
    let mut library = Library::new(Technology::ptm70(), CharGrids::standard());
    let mut cfg = OptimizerConfig {
        algorithm: algo,
        allowed: AllowedParams::table1_dual(),
        iterations: 16,
        ..OptimizerConfig::default()
    };
    cfg.aserta.sensitization_vectors = 4096;

    println!("optimizing {name} with {algo:?}…");
    let outcome = optimize(&circuit, &mut library, &OptimizeRequest::new(cfg.clone()));

    println!("\n=== outcome ===");
    println!(
        "unreliability: {:.3e} -> {:.3e}  (-{:.0}%)",
        outcome.baseline.unreliability,
        outcome.optimized.unreliability,
        100.0 * outcome.unreliability_decrease()
    );
    println!(
        "delay {:.2}x   energy {:.2}x   area {:.2}x   ({} cost evaluations)",
        outcome.delay_ratio(),
        outcome.energy_ratio(),
        outcome.area_ratio(),
        outcome.evaluations
    );

    println!("\ncost trace (best so far):");
    for (i, c) in outcome.history.iter().enumerate() {
        if i % 4 == 0 || i + 1 == outcome.history.len() {
            println!("  iter {i:>3}: {c:.4}");
        }
    }

    // Where did the optimizer spend its freedom? Histogram the chosen
    // VDD/Vth per logic level.
    let levels = topo::levels_from_inputs(&circuit);
    let mut by_level: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
    for g in circuit.gates() {
        let Some(p) = outcome.optimized_cells.get(g) else {
            continue; // the optimizer assigns every gate; skip defensively
        };
        let entry = by_level.entry(levels[g.index()]).or_default();
        entry.0 += 1;
        if p.vdd < 1.0 || p.vth > 0.2 || p.l_nm > 70.0 {
            entry.1 += 1; // "hardened-for-attenuation" cell
        }
    }
    println!("\nslow/attenuating cells by logic level (count/total):");
    for (level, (total, slow)) in by_level {
        println!("  level {level:>2}: {slow:>4}/{total}");
    }

    // Session reuse: replay the optimizer's final assignment onto a
    // persistent AnalysisSession one gate at a time. Each apply() scopes
    // recomputation to the cones/rows the delta invalidates — this is
    // exactly what the optimizer's inner loop does per candidate move.
    let mut session = AnalysisSession::builder(
        &circuit,
        outcome.baseline_cells.clone(),
        library.clone(),
        cfg.aserta.clone(),
    )
    .build()
    .unwrap_or_else(|e| die("building the replay session", e));
    println!("\nsession replay (gate deltas baseline -> optimized):");
    let (mut moves, mut rows) = (0usize, 0usize);
    for g in circuit.gates() {
        let Some(&p) = outcome.optimized_cells.get(g) else {
            continue;
        };
        let stats = session
            .try_apply(&[(g, p)])
            .unwrap_or_else(|e| die("replaying a gate delta", e));
        if stats.gates_changed > 0 {
            moves += 1;
            rows += stats.rows_recomputed;
        }
    }
    println!(
        "  {moves} gate deltas, {rows} width-row recomputes total \
         ({:.1} rows/move vs {} rows per fresh analysis)",
        rows as f64 / moves.max(1) as f64,
        circuit.node_count()
    );
    println!(
        "  session U = {:.3e} (optimizer reported {:.3e})",
        session.unreliability(),
        outcome.optimized.unreliability
    );
}
