//! Quickstart: analyze and harden a small circuit in ~30 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use soft_error::aserta::{try_analyze_fresh, AsertaConfig, CircuitCells};
use soft_error::cells::{CharGrids, Library};
use soft_error::netlist::generate;
use soft_error::sertopt::{optimize, OptimizeRequest, OptimizerConfig};
use soft_error::spice::Technology;

fn die(context: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("error: {context}: {err}");
    std::process::exit(1);
}

fn main() {
    // 1. A circuit: the exact ISCAS'85 c17 (six NAND gates).
    let circuit = generate::c17();
    println!(
        "circuit: {} ({} gates)",
        circuit.name(),
        circuit.gate_count()
    );

    // 2. A characterized cell library over the 70 nm predictive node.
    //    Cells are characterized lazily by transistor-level simulation on
    //    first use and cached from then on.
    let mut library = Library::new(Technology::ptm70(), CharGrids::standard());

    // 3. ASERTA: how soft is the nominal circuit?
    let cells = CircuitCells::nominal(&circuit);
    let report = try_analyze_fresh(&circuit, &cells, &mut library, &AsertaConfig::default())
        .unwrap_or_else(|e| die("analyzing c17", e));
    println!(
        "unreliability U = {:.3e} (size x seconds of latched glitch)",
        report.unreliability
    );
    println!("top soft spots:");
    for (id, u) in report.soft_spots(&circuit, 3) {
        println!("  gate {:<4} U_i = {:.3e}", circuit.node(id).name, u);
    }

    // 4. SERTOPT: harden it without touching path delays.
    let mut cfg = OptimizerConfig::fast();
    cfg.iterations = 12;
    let outcome = optimize(&circuit, &mut library, &OptimizeRequest::new(cfg));
    println!(
        "optimized: unreliability -{:.0}%  (delay {:.2}x, energy {:.2}x, area {:.2}x)",
        100.0 * outcome.unreliability_decrease(),
        outcome.delay_ratio(),
        outcome.energy_ratio(),
        outcome.area_ratio(),
    );
}
